package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAccountantBasicSpend(t *testing.T) {
	a := NewAccountant(1.0)
	if err := a.Spend("q1", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("q2", 0.6); err != nil {
		t.Fatal(err)
	}
	if r := a.Remaining(); math.Abs(r) > 1e-9 {
		t.Errorf("Remaining = %v, want 0", r)
	}
	if err := a.Spend("q3", 0.01); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("overspend allowed, err=%v", err)
	}
	if got := a.Queries(); got != 2 {
		t.Errorf("Queries = %d, want 2 (failed spend must not be logged)", got)
	}
}

func TestAccountantRejectsInvalidEpsilon(t *testing.T) {
	a := NewAccountant(1)
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := a.Spend("bad", eps); err == nil {
			t.Errorf("Spend(%v) accepted", eps)
		}
	}
	if a.Spent() != 0 {
		t.Errorf("invalid spends consumed budget: %v", a.Spent())
	}
}

func TestAccountantZeroBudgetRejectsAll(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Spend("q", 1e-9); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("zero-budget accountant accepted a charge, err=%v", err)
	}
	neg := NewAccountant(-5)
	if neg.Total() != 0 {
		t.Errorf("negative total normalized to %v, want 0", neg.Total())
	}
}

func TestAccountantHistory(t *testing.T) {
	a := NewAccountant(2)
	_ = a.Spend("alpha", 0.5)
	_ = a.Spend("beta", 0.25)
	h := a.History()
	if len(h) != 2 || h[0].Label != "alpha" || h[1].Label != "beta" {
		t.Fatalf("History = %+v", h)
	}
	// The returned slice is a copy.
	h[0].Label = "mutated"
	if a.History()[0].Label != "alpha" {
		t.Error("History exposes internal state")
	}
}

func TestAccountantFloatAccumulationTolerance(t *testing.T) {
	// Spending 1/3 three times should exactly exhaust a budget of 1 without
	// tripping on float error.
	a := NewAccountant(1)
	for i := 0; i < 3; i++ {
		if err := a.Spend("third", 1.0/3.0); err != nil {
			t.Fatalf("spend %d failed: %v", i, err)
		}
	}
}

func TestAccountantConcurrentSpendNeverExceedsTotal(t *testing.T) {
	a := NewAccountant(10)
	var wg sync.WaitGroup
	var mu sync.Mutex
	granted := 0
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if a.Spend("c", 0.5) == nil {
				mu.Lock()
				granted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if granted != 20 {
		t.Errorf("granted %d charges of 0.5 against budget 10, want 20", granted)
	}
	if a.Spent() > a.Total()+1e-9 {
		t.Errorf("spent %v exceeds total %v", a.Spent(), a.Total())
	}
}

// Property: for any sequence of positive charges, the accountant's spent
// total equals the sum of granted charges and never exceeds the budget.
func TestAccountantConservationProperty(t *testing.T) {
	f := func(rawCharges []float64) bool {
		a := NewAccountant(5)
		var granted float64
		for _, c := range rawCharges {
			eps := math.Abs(math.Mod(c, 2))
			if eps == 0 || math.IsNaN(eps) {
				continue
			}
			if a.Spend("p", eps) == nil {
				granted += eps
			}
		}
		return math.Abs(a.Spent()-granted) < 1e-9 && a.Spent() <= a.Total()*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitTight(t *testing.T) {
	s, err := SplitTight(1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.RangeEps != 0 || s.AggregateEps != 0.25 {
		t.Errorf("SplitTight = %+v", s)
	}
	if _, err := SplitTight(1, 0); err == nil {
		t.Error("zero dims accepted")
	}
}

func TestSplitLoose(t *testing.T) {
	s, err := SplitLoose(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.RangeEps != 0.25 || s.AggregateEps != 0.25 {
		t.Errorf("SplitLoose = %+v", s)
	}
}

func TestSplitHelper(t *testing.T) {
	s, err := SplitHelper(1.0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.RangeEps != 0.05 || s.AggregateEps != 0.25 {
		t.Errorf("SplitHelper = %+v", s)
	}
	if _, err := SplitHelper(1, -1, 2); err == nil {
		t.Error("negative input dims accepted")
	}
}

// Property: every Theorem-1 split keeps total consumption at or below ε.
func TestSplitsRespectTotalBudgetProperty(t *testing.T) {
	f := func(e float64, kRaw, pRaw uint8) bool {
		eps := math.Abs(math.Mod(e, 10))
		if eps == 0 {
			return true
		}
		k := int(kRaw%16) + 1
		p := int(pRaw%16) + 1

		tight, err := SplitTight(eps, p)
		if err != nil || tight.AggregateEps*float64(p) > eps*(1+1e-9) {
			return false
		}
		loose, err := SplitLoose(eps, p)
		if err != nil || (loose.RangeEps+loose.AggregateEps)*float64(p) > eps*(1+1e-9) {
			return false
		}
		helper, err := SplitHelper(eps, k, p)
		if err != nil {
			return false
		}
		total := helper.RangeEps*float64(k) + helper.AggregateEps*float64(p)
		return total <= eps*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitUniform(t *testing.T) {
	got, err := SplitUniform(2, 4)
	if err != nil || got != 0.5 {
		t.Errorf("SplitUniform = %v, %v", got, err)
	}
	if _, err := SplitUniform(2, 0); err == nil {
		t.Error("n=0 accepted")
	}
}
