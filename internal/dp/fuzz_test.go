package dp

import (
	"math"
	"testing"

	"gupt/internal/mathutil"
)

// FuzzPercentile checks the DP quantile estimator never panics and always
// returns a value inside the public range, whatever the data.
func FuzzPercentile(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 0.5, 1.0)
	f.Add([]byte{0}, 0.25, 0.01)
	f.Add([]byte{255, 255, 255, 255}, 0.75, 100.0)
	f.Fuzz(func(t *testing.T, raw []byte, p, eps float64) {
		if len(raw) == 0 {
			return
		}
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b) - 128
		}
		r := Range{Lo: -200, Hi: 200}
		got, err := Percentile(mathutil.NewRNG(1), xs, p, r, eps)
		if err != nil {
			return // invalid p or eps; rejection is fine
		}
		if math.IsNaN(got) || !r.Contains(got) {
			t.Fatalf("Percentile(p=%v, eps=%v) = %v escapes range", p, eps, got)
		}
	})
}

// FuzzAccountant checks the ledger invariant — spent never exceeds total —
// under arbitrary charge sequences.
func FuzzAccountant(f *testing.F) {
	f.Add([]byte{10, 20, 30}, 1.0)
	f.Add([]byte{255}, 0.5)
	f.Fuzz(func(t *testing.T, raw []byte, total float64) {
		if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 || total > 1e9 {
			return
		}
		a := NewAccountant(total)
		for _, b := range raw {
			eps := float64(b) / 64
			if eps == 0 {
				continue
			}
			_ = a.Spend("f", eps)
			if a.Spent() > a.Total()*(1+1e-9)+1e-12 {
				t.Fatalf("spent %v exceeds total %v", a.Spent(), a.Total())
			}
		}
	})
}
