package dp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/mathutil"
)

func TestNewRange(t *testing.T) {
	if _, err := NewRange(0, 10); err != nil {
		t.Errorf("valid range rejected: %v", err)
	}
	if _, err := NewRange(10, 0); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("inverted range accepted, err=%v", err)
	}
	if _, err := NewRange(math.NaN(), 1); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("NaN range accepted, err=%v", err)
	}
	if _, err := NewRange(0, math.Inf(1)); !errors.Is(err, ErrInvalidRange) {
		t.Errorf("infinite range accepted, err=%v", err)
	}
	if _, err := NewRange(5, 5); err != nil {
		t.Errorf("degenerate range rejected: %v", err)
	}
}

func TestRangeOps(t *testing.T) {
	r := Range{Lo: -2, Hi: 6}
	if r.Width() != 8 {
		t.Errorf("Width = %v, want 8", r.Width())
	}
	if r.Mid() != 2 {
		t.Errorf("Mid = %v, want 2", r.Mid())
	}
	if r.Clamp(100) != 6 || r.Clamp(-100) != -2 || r.Clamp(0) != 0 {
		t.Error("Clamp misbehaves")
	}
	if !r.Contains(6) || !r.Contains(-2) || r.Contains(6.1) {
		t.Error("Contains misbehaves")
	}
	s := r.Scale(-1)
	if s.Lo != -6 || s.Hi != 2 {
		t.Errorf("Scale(-1) = %+v, want [-6, 2]", s)
	}
}

func TestLaplaceRejectsBadParams(t *testing.T) {
	g := mathutil.NewRNG(1)
	if _, err := Laplace(g, 0, 1, 0); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=0 accepted, err=%v", err)
	}
	if _, err := Laplace(g, 0, 1, -2); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps<0 accepted, err=%v", err)
	}
	if _, err := Laplace(g, 0, 1, math.Inf(1)); !errors.Is(err, ErrInvalidEpsilon) {
		t.Errorf("eps=inf accepted, err=%v", err)
	}
	if _, err := Laplace(g, 0, -1, 1); err == nil {
		t.Error("negative sensitivity accepted")
	}
	if _, err := Laplace(g, 0, math.NaN(), 1); err == nil {
		t.Error("NaN sensitivity accepted")
	}
}

func TestLaplaceUnbiasedWithCorrectScale(t *testing.T) {
	g := mathutil.NewRNG(17)
	const n = 100000
	const value, sens, eps = 10.0, 2.0, 0.5
	xs := make([]float64, n)
	for i := range xs {
		x, err := Laplace(g, value, sens, eps)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = x
	}
	if m := mathutil.Mean(xs); math.Abs(m-value) > 0.1 {
		t.Errorf("mean = %v, want ~%v", m, value)
	}
	// Var = 2(sens/eps)^2 = 32.
	if v := mathutil.Variance(xs); math.Abs(v-32) > 2 {
		t.Errorf("variance = %v, want ~32", v)
	}
}

func TestLaplaceZeroSensitivityIsExact(t *testing.T) {
	g := mathutil.NewRNG(3)
	got, err := Laplace(g, 7, 0, 1)
	if err != nil || got != 7 {
		t.Errorf("Laplace(sens=0) = %v, %v; want exactly 7", got, err)
	}
}

func TestLaplaceVec(t *testing.T) {
	g := mathutil.NewRNG(5)
	v := mathutil.Vec{1, 2, 3}
	out, err := LaplaceVec(g, v, []float64{0, 0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(v, 0) {
		t.Errorf("zero-sensitivity LaplaceVec changed values: %v", out)
	}
	if _, err := LaplaceVec(g, v, []float64{1}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LaplaceVec(g, v, []float64{1, -1, 1}, 1); err == nil {
		t.Error("negative sensitivity accepted")
	}
}

func TestNoisyCountSumAvg(t *testing.T) {
	g := mathutil.NewRNG(23)
	// With a huge epsilon, noise is negligible: check the underlying values.
	c, err := NoisyCount(g, 42, 1e9)
	if err != nil || math.Abs(c-42) > 0.01 {
		t.Errorf("NoisyCount = %v, %v", c, err)
	}
	xs := []float64{1, 2, 3, 100} // 100 clamps to 10
	r := Range{Lo: 0, Hi: 10}
	s, err := NoisySum(g, xs, r, 1e9)
	if err != nil || math.Abs(s-16) > 0.01 {
		t.Errorf("NoisySum = %v, %v, want ~16", s, err)
	}
	a, err := NoisyAvg(g, xs, r, 1e9)
	if err != nil || math.Abs(a-4) > 0.01 {
		t.Errorf("NoisyAvg = %v, %v, want ~4", a, err)
	}
	if _, err := NoisyAvg(g, nil, r, 1); err == nil {
		t.Error("NoisyAvg of empty slice accepted")
	}
	if _, err := NoisySum(g, xs, Range{Lo: 1, Hi: 0}, 1); err == nil {
		t.Error("NoisySum with inverted range accepted")
	}
}

func TestExponentialPrefersHighUtility(t *testing.T) {
	g := mathutil.NewRNG(29)
	utilities := []float64{0, 0, 100}
	wins := 0
	for i := 0; i < 1000; i++ {
		idx, err := Exponential(g, utilities, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 2 {
			wins++
		}
	}
	if wins < 990 {
		t.Errorf("high-utility candidate won %d/1000", wins)
	}
}

func TestExponentialUniformWhenTied(t *testing.T) {
	g := mathutil.NewRNG(31)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		idx, err := Exponential(g, []float64{5, 5, 5, 5}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if f := float64(c) / 40000; math.Abs(f-0.25) > 0.02 {
			t.Errorf("tied candidate %d frequency %v, want ~0.25", i, f)
		}
	}
}

func TestExponentialRejectsBadParams(t *testing.T) {
	g := mathutil.NewRNG(1)
	if _, err := Exponential(g, nil, 1, 1); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := Exponential(g, []float64{1}, 0, 1); err == nil {
		t.Error("zero sensitivity accepted")
	}
	if _, err := Exponential(g, []float64{1}, 1, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
}

func TestPercentileBasicAccuracy(t *testing.T) {
	g := mathutil.NewRNG(37)
	xs := make([]float64, 2001)
	for i := range xs {
		xs[i] = float64(i) // 0..2000, so p-quantile ~ 2000p
	}
	r := Range{Lo: 0, Hi: 2000}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		got, err := Percentile(g, xs, p, r, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		want := 2000 * p
		if math.Abs(got-want) > 50 {
			t.Errorf("Percentile(%v) = %v, want ~%v", p, got, want)
		}
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	g := mathutil.NewRNG(41)
	f := func(raw []float64, seed int64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		r := Range{Lo: -100, Hi: 100}
		got, err := Percentile(g, xs, 0.5, r, 0.1)
		if err != nil {
			return false
		}
		return r.Contains(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileDegenerateData(t *testing.T) {
	g := mathutil.NewRNG(43)
	// All data identical and equal to both bounds: the only answer is that value.
	got, err := Percentile(g, []float64{5, 5, 5}, 0.5, Range{Lo: 5, Hi: 5}, 1)
	if err != nil || got != 5 {
		t.Errorf("degenerate percentile = %v, %v; want 5", got, err)
	}
	if _, err := Percentile(g, nil, 0.5, Range{Lo: 0, Hi: 1}, 1); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Percentile(g, []float64{1}, 0, Range{Lo: 0, Hi: 1}, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Percentile(g, []float64{1}, 1, Range{Lo: 0, Hi: 1}, 1); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestInterquartileRange(t *testing.T) {
	g := mathutil.NewRNG(47)
	xs := make([]float64, 4001)
	for i := range xs {
		xs[i] = float64(i) / 4000 // uniform on [0,1]
	}
	r := Range{Lo: 0, Hi: 1}
	iqr, err := InterquartileRange(g, xs, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if iqr.Lo > iqr.Hi {
		t.Errorf("inverted IQR: %+v", iqr)
	}
	if math.Abs(iqr.Lo-0.25) > 0.1 || math.Abs(iqr.Hi-0.75) > 0.1 {
		t.Errorf("IQR = %+v, want ~[0.25, 0.75]", iqr)
	}
	if iqr.Lo < r.Lo || iqr.Hi > r.Hi {
		t.Errorf("IQR escapes public range: %+v", iqr)
	}
}
