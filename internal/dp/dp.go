// Package dp implements the differential-privacy primitives GUPT is built
// from: the Laplace mechanism, the exponential mechanism, the
// exponential-mechanism-based percentile estimator of Smith (STOC '11) used
// by GUPT's output-range estimation, a sequential-composition privacy
// accountant, and the per-dimension budget splits of the paper's Theorem 1.
//
// Conventions. Privacy parameters are the standard ε of pure
// ε-differential privacy (Definition 1 in the paper). All mechanisms take an
// explicit *mathutil.RNG so experiments are reproducible; none of them read
// global randomness.
package dp

import (
	"errors"
	"fmt"
	"math"

	"gupt/internal/mathutil"
)

// ErrInvalidEpsilon is returned when a mechanism is invoked with a
// non-positive or non-finite privacy parameter.
var ErrInvalidEpsilon = errors.New("dp: epsilon must be positive and finite")

// ErrInvalidRange is returned when an output or input range [Lo, Hi] is
// empty, inverted, or non-finite.
var ErrInvalidRange = errors.New("dp: invalid range")

// Range is a closed interval [Lo, Hi] bounding a scalar quantity. GUPT uses
// ranges both for dataset attributes (input ranges supplied by the data
// owner) and for per-dimension program outputs (supplied by the analyst or
// estimated privately).
type Range struct {
	Lo, Hi float64
}

// NewRange returns the range [lo, hi], validating lo <= hi and finiteness.
func NewRange(lo, hi float64) (Range, error) {
	r := Range{Lo: lo, Hi: hi}
	if err := r.Validate(); err != nil {
		return Range{}, err
	}
	return r, nil
}

// Validate reports whether the range is a well-formed, finite, non-inverted
// interval.
func (r Range) Validate() error {
	if math.IsNaN(r.Lo) || math.IsNaN(r.Hi) || math.IsInf(r.Lo, 0) || math.IsInf(r.Hi, 0) {
		return fmt.Errorf("%w: [%v, %v] is not finite", ErrInvalidRange, r.Lo, r.Hi)
	}
	if r.Lo > r.Hi {
		return fmt.Errorf("%w: lo %v > hi %v", ErrInvalidRange, r.Lo, r.Hi)
	}
	return nil
}

// Width returns Hi - Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Clamp restricts x to the range. NaN maps to Lo (see mathutil.Clamp).
func (r Range) Clamp(x float64) float64 { return mathutil.Clamp(x, r.Lo, r.Hi) }

// Contains reports whether x lies in [Lo, Hi].
func (r Range) Contains(x float64) bool { return x >= r.Lo && x <= r.Hi }

// Mid returns the midpoint of the range, used as the data-independent
// substitute output when a timing-attack defense kills a computation.
func (r Range) Mid() float64 { return (r.Lo + r.Hi) / 2 }

// Scale multiplies both endpoints by c, preserving orientation.
func (r Range) Scale(c float64) Range {
	lo, hi := r.Lo*c, r.Hi*c
	if lo > hi {
		lo, hi = hi, lo
	}
	return Range{Lo: lo, Hi: hi}
}

func checkEpsilon(eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("%w: got %v", ErrInvalidEpsilon, eps)
	}
	return nil
}
