package dp

import (
	"math"
	"testing"

	"gupt/internal/mathutil"
)

// LaplaceVec's batched draws must be bit-identical to calling Laplace per
// dimension in index order on the same RNG stream: the engine's noising
// stage switched to the batch path on that exact contract (see
// core/engine.go), and the determinism fixtures proven against the scalar
// path stand only while it holds.
func TestLaplaceVecMatchesScalarLaplace(t *testing.T) {
	value := mathutil.Vec{10, -3.5, 0, 2.25e6, math.Copysign(0, -1)}
	sens := []float64{1, 0.25, 0, 3, 0.5}
	const eps = 0.7

	batched := mathutil.NewRNG(1234)
	scalar := mathutil.NewRNG(1234)

	got, err := LaplaceVec(batched, value, sens, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range value {
		want, err := Laplace(scalar, value[i], sens[i], eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Errorf("dim %d: batched %x, scalar %x", i, math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	if a, b := batched.Float64(), scalar.Float64(); a != b {
		t.Errorf("RNG streams diverged after LaplaceVec: %v vs %v", a, b)
	}
}

// A rejected batch must consume no randomness: validation happens before
// any draw, so a failed call leaves the noise stream exactly where it was.
func TestLaplaceVecInvalidSensitivityDrawsNothing(t *testing.T) {
	rng := mathutil.NewRNG(8)
	fresh := mathutil.NewRNG(8)
	cases := [][]float64{
		{1, -0.5},
		{math.NaN(), 1},
		{1, math.Inf(1)},
	}
	for _, sens := range cases {
		if _, err := LaplaceVec(rng, mathutil.Vec{1, 2}, sens, 1); err == nil {
			t.Errorf("sensitivities %v accepted", sens)
		}
	}
	if _, err := LaplaceVec(rng, mathutil.Vec{1}, []float64{1, 2}, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if a, b := rng.Float64(), fresh.Float64(); a != b {
		t.Errorf("failed LaplaceVec calls consumed randomness: %v vs %v", a, b)
	}
}
