package dp

import (
	"testing"

	"gupt/internal/mathutil"
)

func BenchmarkLaplace(b *testing.B) {
	rng := mathutil.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := Laplace(rng, 42, 1, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisyAvg(b *testing.B) {
	rng := mathutil.NewRNG(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i % 150)
	}
	r := Range{Lo: 0, Hi: 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NoisyAvg(rng, xs, r, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPercentile(b *testing.B) {
	rng := mathutil.NewRNG(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i % 150)
	}
	r := Range{Lo: 0, Hi: 150}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Percentile(rng, xs, 0.5, r, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExponential(b *testing.B) {
	rng := mathutil.NewRNG(1)
	utilities := make([]float64, 256)
	for i := range utilities {
		utilities[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exponential(rng, utilities, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccountantSpend(b *testing.B) {
	a := NewAccountant(float64(b.N) + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Spend("bench", 1); err != nil {
			b.Fatal(err)
		}
	}
}
