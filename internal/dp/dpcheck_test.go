package dp

import (
	"math"
	"sort"
	"testing"

	"gupt/internal/mathutil"
)

// Empirical differential-privacy checks: sample a mechanism's output
// distribution on two neighboring datasets and verify the ε-DP likelihood
// bound Pr[M(T) ∈ O] ≤ e^ε·Pr[M(T') ∈ O] across a histogram of outcomes.
// These are statistical tests with deterministic seeds and generous slack —
// they cannot prove privacy, but they reliably catch sign errors, wrong
// sensitivity constants and budget miscounting, the bugs that actually
// happen.

// empiricalMaxLogRatio samples both mechanisms n times, bins the pooled
// outputs, and returns the largest |log(p_i/q_i)| over bins where both
// sides have enough mass for the estimate to be stable.
func empiricalMaxLogRatio(t *testing.T, n, bins int, minCount int, mA, mB func(seed int64) float64) float64 {
	t.Helper()
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = mA(int64(i))
		b[i] = mB(int64(i))
	}
	pooled := append(append([]float64(nil), a...), b...)
	sort.Float64s(pooled)
	lo, hi := pooled[0], pooled[len(pooled)-1]
	if hi == lo {
		return 0
	}
	width := (hi - lo) / float64(bins)
	countA := make([]int, bins)
	countB := make([]int, bins)
	binOf := func(x float64) int {
		i := int((x - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	for i := 0; i < n; i++ {
		countA[binOf(a[i])]++
		countB[binOf(b[i])]++
	}
	worst := 0.0
	for i := 0; i < bins; i++ {
		if countA[i] < minCount || countB[i] < minCount {
			continue // too little mass for a stable ratio estimate
		}
		r := math.Abs(math.Log(float64(countA[i]) / float64(countB[i])))
		if r > worst {
			worst = r
		}
	}
	return worst
}

// neighborData returns a dataset and a neighbor differing in one record
// (the maximal move within the range, the worst case for the mean).
func neighborData(n int) (ta, tb []float64) {
	ta = make([]float64, n)
	tb = make([]float64, n)
	for i := range ta {
		ta[i] = 50
		tb[i] = 50
	}
	tb[0] = 150 // one record moves across the full range
	return ta, tb
}

func TestNoisyAvgSatisfiesEpsilonDP(t *testing.T) {
	const eps = 1.0
	r := Range{Lo: 0, Hi: 150}
	ta, tb := neighborData(20)
	mech := func(data []float64) func(int64) float64 {
		return func(seed int64) float64 {
			out, err := NoisyAvg(mathutil.NewRNG(seed), data, r, eps)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
	}
	worst := empiricalMaxLogRatio(t, 40000, 24, 50, mech(ta), mech(tb))
	// Slack derivation: a bin passing the ≥50-count floor estimates its
	// log-ratio with standard error ≤ √(1/cA+1/cB) ≤ √(2/50) ≈ 0.20; the
	// max over ≤24 bins sits near 2σ ≈ 0.40. A sensitivity bug (e.g.
	// forgetting the 1/n) would blow past eps by multiples, far outside it.
	if worst > eps+0.4 {
		t.Errorf("empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
	if worst == 0 {
		t.Error("distributions identical — the neighbor change had no effect, test is vacuous")
	}
}

func TestNoisyCountSatisfiesEpsilonDP(t *testing.T) {
	const eps = 0.5
	mech := func(count int) func(int64) float64 {
		return func(seed int64) float64 {
			out, err := NoisyCount(mathutil.NewRNG(seed), count, eps)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
	}
	worst := empiricalMaxLogRatio(t, 40000, 24, 50, mech(100), mech(101))
	// Slack ≈ 1.5σ of the 0.20 per-bin standard error (see the avg test):
	// tighter than 2σ is safe here because count sensitivity is exactly 1,
	// so the true ratio sits well inside eps and a miscount lands at 2eps.
	if worst > eps+0.3 {
		t.Errorf("empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}

// A deliberately broken mechanism (half the correct noise) must FAIL the
// check — guarding the guard.
func TestEmpiricalCheckDetectsBrokenMechanism(t *testing.T) {
	const eps = 1.0
	r := Range{Lo: 0, Hi: 150}
	ta, tb := neighborData(20)
	broken := func(data []float64) func(int64) float64 {
		return func(seed int64) float64 {
			rng := mathutil.NewRNG(seed)
			var sum float64
			for _, x := range data {
				sum += r.Clamp(x)
			}
			n := float64(len(data))
			// Wrong scale: sensitivity/(4ε) instead of sensitivity/ε.
			return sum/n + rng.Laplace(r.Width()/n/(4*eps))
		}
	}
	worst := empiricalMaxLogRatio(t, 40000, 24, 50, broken(ta), broken(tb))
	if worst <= eps+0.4 {
		t.Errorf("under-noised mechanism passed the check (ratio %.2f) — the check is too weak", worst)
	}
}

func TestPercentileSatisfiesEpsilonDP(t *testing.T) {
	const eps = 1.0
	r := Range{Lo: 0, Hi: 100}
	// Neighbors: one record moves from the lower cluster to the upper.
	base := []float64{10, 11, 12, 13, 14, 80, 81, 82, 83}
	neighbor := append([]float64(nil), base...)
	neighbor[0] = 85
	mech := func(data []float64) func(int64) float64 {
		return func(seed int64) float64 {
			out, err := Percentile(mathutil.NewRNG(seed), data, 0.5, r, eps)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
	}
	worst := empiricalMaxLogRatio(t, 40000, 16, 60, mech(base), mech(neighbor))
	// Slack derivation: per-bin standard error ≤ √(2/60) ≈ 0.18, extreme
	// over ≤16 bins ≈ 2σ ≈ 0.37, plus margin for the exponential
	// mechanism's discrete gap structure (bin edges split gaps unevenly).
	if worst > eps+0.5 {
		t.Errorf("empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}
