package core

import (
	"fmt"
	"sort"

	"gupt/internal/mathutil"
)

// User-level privacy (paper §8.1): when several records belong to the same
// user, record-level differential privacy under-protects — a user's whole
// record set must be treated as the unit of privacy. GUPT's block structure
// extends naturally: place *all* of a user's records in the same block
// (γ of them under resampling), and the familiar sensitivity argument goes
// through with the user as the atom — changing one user perturbs at most γ
// clamped block outputs, so the Laplace scale γ·range/(ℓ·ε) is unchanged.
// The paper lists this as future work; it is implemented here as an
// extension.

// MakeGroupedPartition builds a partition of n rows in which every group
// (e.g. all records of one user) lands intact in exactly gamma distinct
// blocks. groups lists row indices per group; every row must appear in
// exactly one group. blockSize is the target records per block; the block
// count is γ·n/β as usual, but actual block sizes vary with group sizes.
// No group may exceed the target block size.
func MakeGroupedPartition(rng *mathutil.RNG, n int, groups [][]int, blockSize, gamma int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: cannot partition %d rows", n)
	}
	if blockSize < 1 || blockSize > n {
		return nil, fmt.Errorf("core: block size %d out of range [1, %d]", blockSize, n)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("core: resampling factor %d must be >= 1", gamma)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: no groups")
	}
	seen := make([]bool, n)
	total := 0
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("core: group %d is empty", gi)
		}
		if len(g) > blockSize {
			return nil, fmt.Errorf("core: group %d has %d records, exceeding block size %d — raise the block size so one user fits in one block",
				gi, len(g), blockSize)
		}
		for _, r := range g {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("core: group %d references row %d outside [0, %d)", gi, r, n)
			}
			if seen[r] {
				return nil, fmt.Errorf("core: row %d appears in multiple groups", r)
			}
			seen[r] = true
			total++
		}
	}
	if total != n {
		return nil, fmt.Errorf("core: groups cover %d of %d rows", total, n)
	}

	numBlocks := gamma * n / blockSize
	if numBlocks < 1 {
		numBlocks = 1
	}
	if gamma > numBlocks {
		return nil, fmt.Errorf("core: resampling factor %d exceeds block count %d", gamma, numBlocks)
	}

	// Greedy balanced assignment: visit groups in random order (largest
	// tie-broken by the shuffle), placing each into the γ least-loaded
	// blocks that do not already hold it. Load is measured in records.
	order := rng.Perm(len(groups))
	blocks := make([][]int, numBlocks)
	loads := make([]int, numBlocks)
	type blockLoad struct{ idx, load int }
	for _, gi := range order {
		g := groups[gi]
		// Rank blocks by load; take the gamma lightest.
		ranked := make([]blockLoad, numBlocks)
		for b := range ranked {
			ranked[b] = blockLoad{idx: b, load: loads[b]}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].load != ranked[j].load {
				return ranked[i].load < ranked[j].load
			}
			return ranked[i].idx < ranked[j].idx
		})
		for c := 0; c < gamma; c++ {
			b := ranked[c].idx
			blocks[b] = append(blocks[b], g...)
			loads[b] += len(g)
		}
	}

	return &Partition{Blocks: blocks, BlockSize: blockSize, Gamma: gamma, N: n}, nil
}

// GroupRowsByColumn buckets row indices by the (exact float64) value of the
// given column — the common case where a user identifier is stored as a
// numeric column. Groups are returned in ascending key order so the
// partition is deterministic given the RNG.
func GroupRowsByColumn(rows []mathutil.Vec, col int) ([][]int, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no rows to group")
	}
	if col < 0 || col >= len(rows[0]) {
		return nil, fmt.Errorf("core: group column %d out of range for %d-dim rows", col, len(rows[0]))
	}
	byKey := make(map[float64][]int)
	for i, r := range rows {
		byKey[r[col]] = append(byKey[r[col]], i)
	}
	keys := make([]float64, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	groups := make([][]int, len(keys))
	for i, k := range keys {
		groups[i] = byKey[k]
	}
	return groups, nil
}
