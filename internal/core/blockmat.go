package core

import "gupt/internal/mathutil"

// blockMatrix stores the engine's block outputs in one contiguous
// column-major buffer: column d (all blocks' values for output dimension d)
// occupies data[d*n : (d+1)*n]. The release pipeline — loose-range
// estimation, clamp+average, noising — consumes outputs a dimension at a
// time, so the column-major layout turns its inner loops into sequential
// walks over contiguous memory instead of strided hops across per-block
// slices, and the single backing array replaces one allocation per block.
type blockMatrix struct {
	data []float64
	n    int // blocks (rows)
	dims int // output dimensions (columns)
}

func newBlockMatrix(n, dims int) *blockMatrix {
	return &blockMatrix{data: make([]float64, n*dims), n: n, dims: dims}
}

// setRow records block i's output vector. Distinct blocks write disjoint
// entries, so concurrent setRow calls for different i need no locking.
func (m *blockMatrix) setRow(i int, v mathutil.Vec) {
	for d, x := range v {
		m.data[d*m.n+i] = x
	}
}

// col returns dimension d's values across all blocks, in block order, as a
// view into the backing array. Callers must not retain it past the matrix.
func (m *blockMatrix) col(d int) []float64 {
	return m.data[d*m.n : (d+1)*m.n]
}
