package core

import (
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/mathutil"
)

func TestDefaultBlockSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0},
		{1, 1},
		{100, 16},    // 100^0.6 ≈ 15.85
		{26733, 453}, // the life-sciences dataset
	}
	for _, c := range cases {
		if got := DefaultBlockSize(c.n); got != c.want {
			t.Errorf("DefaultBlockSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if got := DefaultBlockSize(2); got < 1 || got > 2 {
		t.Errorf("DefaultBlockSize(2) = %d out of [1,2]", got)
	}
}

func TestMakePartitionDisjointCover(t *testing.T) {
	rng := mathutil.NewRNG(1)
	p, err := MakePartition(rng, 1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != 10 {
		t.Fatalf("NumBlocks = %d, want 10", p.NumBlocks())
	}
	seen := make(map[int]int)
	for _, b := range p.Blocks {
		for _, r := range b {
			seen[r]++
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("partition covers %d rows, want 1000", len(seen))
	}
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("row %d appears %d times with gamma=1", r, c)
		}
	}
}

func TestMakePartitionResampling(t *testing.T) {
	rng := mathutil.NewRNG(2)
	const n, beta, gamma = 500, 50, 4
	p, err := MakePartition(rng, n, beta, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks() != gamma*n/beta {
		t.Fatalf("NumBlocks = %d, want %d", p.NumBlocks(), gamma*n/beta)
	}
	// Every record appears in exactly gamma distinct blocks.
	counts := make(map[int]int)
	for bi, b := range p.Blocks {
		inBlock := make(map[int]bool)
		for _, r := range b {
			if inBlock[r] {
				t.Fatalf("row %d duplicated within block %d", r, bi)
			}
			inBlock[r] = true
			counts[r]++
		}
	}
	for r := 0; r < n; r++ {
		if counts[r] != gamma {
			t.Fatalf("row %d appears in %d blocks, want %d", r, counts[r], gamma)
		}
	}
	// Block sizes are balanced around beta.
	for bi, b := range p.Blocks {
		if len(b) < beta-5 || len(b) > beta+5 {
			t.Errorf("block %d size %d far from beta %d", bi, len(b), beta)
		}
	}
}

// Property: for arbitrary (n, beta, gamma) the partition is exact — every
// row in exactly gamma distinct blocks — and no block holds duplicates.
func TestMakePartitionProperty(t *testing.T) {
	f := func(nRaw, betaRaw, gammaRaw uint16, seed int64) bool {
		n := int(nRaw%300) + 1
		beta := int(betaRaw)%n + 1
		maxBlocks := n / beta // lower bound on final block count
		if maxBlocks < 1 {
			maxBlocks = 1
		}
		gamma := int(gammaRaw)%4 + 1
		if gamma > maxBlocks { // respect the gamma <= numBlocks constraint
			gamma = 1
		}
		p, err := MakePartition(mathutil.NewRNG(seed), n, beta, gamma)
		if err != nil {
			return false
		}
		counts := make(map[int]int)
		for _, b := range p.Blocks {
			inBlock := make(map[int]bool)
			for _, r := range b {
				if r < 0 || r >= n || inBlock[r] {
					return false
				}
				inBlock[r] = true
				counts[r]++
			}
		}
		for r := 0; r < n; r++ {
			if counts[r] != gamma {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Regression: random bin placement used to leave empty blocks at small
// block sizes (e.g. beta=2 with odd n), which the engine would substitute
// with range midpoints and bias the aggregate (visible as a spike at
// beta=2 in the Figure 9 sweep).
func TestMakePartitionNoEmptyBlocks(t *testing.T) {
	for _, tc := range []struct{ n, beta, gamma int }{
		{3279, 2, 1}, {3279, 5, 1}, {3279, 1, 1}, {100, 3, 1},
		{500, 2, 2}, {500, 3, 4}, {1000, 7, 3},
	} {
		p, err := MakePartition(mathutil.NewRNG(99), tc.n, tc.beta, tc.gamma)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		for bi, b := range p.Blocks {
			if len(b) == 0 {
				t.Errorf("%+v: block %d is empty", tc, bi)
			}
		}
	}
}

// With gamma=1 the partition is exactly balanced: block sizes differ by at
// most one.
func TestMakePartitionBalancedGamma1(t *testing.T) {
	p, err := MakePartition(mathutil.NewRNG(1), 3279, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	minSize, maxSize := len(p.Blocks[0]), len(p.Blocks[0])
	for _, b := range p.Blocks {
		if len(b) < minSize {
			minSize = len(b)
		}
		if len(b) > maxSize {
			maxSize = len(b)
		}
	}
	if maxSize-minSize > 1 {
		t.Errorf("gamma=1 block sizes range [%d, %d], want spread <= 1", minSize, maxSize)
	}
}

func TestMakePartitionValidation(t *testing.T) {
	rng := mathutil.NewRNG(1)
	cases := []struct{ n, beta, gamma int }{
		{0, 1, 1},
		{10, 0, 1},
		{10, 11, 1},
		{10, 1, 0},
		{10, 1, -3},
	}
	for _, c := range cases {
		if _, err := MakePartition(rng, c.n, c.beta, c.gamma); err == nil {
			t.Errorf("MakePartition(%d,%d,%d) accepted", c.n, c.beta, c.gamma)
		}
	}
}

func TestPartitionSensitivity(t *testing.T) {
	rng := mathutil.NewRNG(3)
	p, err := MakePartition(rng, 1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// gamma*width/l = 1*8/10.
	if got := p.Sensitivity(8); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Sensitivity = %v, want 0.8", got)
	}
	// Claim 1: for fixed beta, resampling does not increase the noise scale:
	// gamma*width/(gamma*n/beta) = beta*width/n regardless of gamma.
	p4, err := MakePartition(rng, 1000, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := p.Sensitivity(8), p4.Sensitivity(8); math.Abs(a-b) > 1e-12 {
		t.Errorf("Claim 1 violated: gamma=1 sens %v != gamma=4 sens %v", a, b)
	}
}

func TestPartitionMaterialize(t *testing.T) {
	rng := mathutil.NewRNG(4)
	rows := []mathutil.Vec{{0}, {1}, {2}, {3}}
	p, err := MakePartition(rng, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	block := p.Materialize(rows, 0)
	if len(block) != len(p.Blocks[0]) {
		t.Fatalf("materialized %d rows for block of %d", len(block), len(p.Blocks[0]))
	}
	// Materialized rows are copies.
	block[0][0] = 99
	if rows[p.Blocks[0][0]][0] == 99 {
		t.Error("Materialize aliased dataset rows")
	}
}

func TestMakePartitionDeterministic(t *testing.T) {
	a, err := MakePartition(mathutil.NewRNG(9), 200, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakePartition(mathutil.NewRNG(9), 200, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Blocks {
		if len(a.Blocks[i]) != len(b.Blocks[i]) {
			t.Fatal("partition not deterministic")
		}
		for j := range a.Blocks[i] {
			if a.Blocks[i][j] != b.Blocks[i][j] {
				t.Fatal("partition not deterministic")
			}
		}
	}
}
