package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// ageRows builds a 1-column dataset of n synthetic "ages" around mean 40.
func ageRows(seed int64, n int) []mathutil.Vec {
	rng := mathutil.NewRNG(seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	return rows
}

func trueMean(rows []mathutil.Vec) float64 {
	col := make([]float64, len(rows))
	for i, r := range rows {
		col[i] = r[0]
	}
	return mathutil.Mean(col)
}

func tightSpec(ranges ...dp.Range) RangeSpec {
	return RangeSpec{Mode: ModeTight, Output: ranges}
}

func TestRunTightMeanAccurate(t *testing.T) {
	rows := ageRows(1, 10000)
	res, err := Run(context.Background(), analytics.Mean{Col: 0},
		rows, tightSpec(dp.Range{Lo: 0, Hi: 150}), Options{Epsilon: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := trueMean(rows)
	if math.Abs(res.Output[0]-want) > 2 {
		t.Errorf("private mean = %v, true %v", res.Output[0], want)
	}
	if res.Mode != ModeTight || res.EpsilonSpent != 5 {
		t.Errorf("metadata wrong: %+v", res)
	}
	if res.BlockSize != DefaultBlockSize(10000) || res.Gamma != 1 {
		t.Errorf("defaults wrong: beta=%d gamma=%d", res.BlockSize, res.Gamma)
	}
	if res.FailedBlocks != 0 {
		t.Errorf("FailedBlocks = %d", res.FailedBlocks)
	}
}

func TestRunDeterministicInSeed(t *testing.T) {
	rows := ageRows(2, 2000)
	opts := Options{Epsilon: 1, Seed: 11}
	spec := tightSpec(dp.Range{Lo: 0, Hi: 150})
	a, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Output[0] != b.Output[0] {
		t.Errorf("same seed, different outputs: %v vs %v", a.Output[0], b.Output[0])
	}
	opts.Seed = 12
	c, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Output[0] == c.Output[0] {
		t.Error("different seeds produced identical noise (suspicious)")
	}
}

func TestRunNoiseScalesWithEpsilon(t *testing.T) {
	rows := ageRows(3, 5000)
	want := trueMean(rows)
	spec := tightSpec(dp.Range{Lo: 0, Hi: 150})
	spread := func(eps float64) float64 {
		var errs []float64
		for seed := int64(0); seed < 40; seed++ {
			res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
				Options{Epsilon: eps, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			errs = append(errs, res.Output[0]-want)
		}
		return mathutil.StdDev(errs)
	}
	loose, tight := spread(0.05), spread(5)
	if loose <= tight {
		t.Errorf("eps=0.05 spread %v not larger than eps=5 spread %v", loose, tight)
	}
}

func TestRunLooseMode(t *testing.T) {
	rows := ageRows(4, 10000)
	spec := RangeSpec{Mode: ModeLoose, Output: []dp.Range{{Lo: 0, Hi: 300}}}
	res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
		Options{Epsilon: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := trueMean(rows)
	if math.Abs(res.Output[0]-want) > 10 {
		t.Errorf("loose-mode mean = %v, true %v", res.Output[0], want)
	}
	// The effective range must be a tightening of the loose range.
	er := res.EffectiveRanges[0]
	if er.Lo < 0 || er.Hi > 300 {
		t.Errorf("effective range %+v escapes the loose range", er)
	}
	if er.Width() >= 300 {
		t.Errorf("effective range %+v was not tightened", er)
	}
}

func TestRunHelperMode(t *testing.T) {
	rows := ageRows(5, 10000)
	spec := RangeSpec{
		Mode:  ModeHelper,
		Input: []dp.Range{{Lo: 0, Hi: 150}},
		Translate: func(in []dp.Range) []dp.Range {
			// The mean of values in [lo,hi] lies in [lo,hi]; widen a little
			// since the IQR understates the full range.
			r := in[0]
			return []dp.Range{{Lo: r.Lo - 10, Hi: r.Hi + 10}}
		},
	}
	res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
		Options{Epsilon: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := trueMean(rows)
	if math.Abs(res.Output[0]-want) > 10 {
		t.Errorf("helper-mode mean = %v, true %v", res.Output[0], want)
	}
}

// §4.1: a wider inter-percentile pair is usable when there are more
// samples; verify the configurable pair flows through loose mode and that
// invalid pairs are rejected.
func TestRunPercentilePair(t *testing.T) {
	rows := ageRows(14, 10000)
	spec := RangeSpec{
		Mode:          ModeLoose,
		Output:        []dp.Range{{Lo: 0, Hi: 300}},
		PercentileLow: 0.1, PercentileHigh: 0.9,
	}
	res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
		Options{Epsilon: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-trueMean(rows)) > 10 {
		t.Errorf("wide-pair loose mean = %v", res.Output[0])
	}
	bad := spec
	bad.PercentileLow, bad.PercentileHigh = 0.9, 0.1
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, bad, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Errorf("inverted pair err = %v", err)
	}
	bad.PercentileLow, bad.PercentileHigh = 0, 0.5
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, bad, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Errorf("zero-low pair err = %v", err)
	}
}

func TestRunHelperRequiresInputRanges(t *testing.T) {
	rows := ageRows(5, 100)
	spec := RangeSpec{
		Mode:      ModeHelper,
		Translate: func(in []dp.Range) []dp.Range { return in },
	}
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Errorf("missing input ranges, err = %v", err)
	}
}

func TestRunHelperBadTranslate(t *testing.T) {
	rows := ageRows(5, 100)
	spec := RangeSpec{
		Mode:      ModeHelper,
		Input:     []dp.Range{{Lo: 0, Hi: 150}},
		Translate: func(in []dp.Range) []dp.Range { return nil }, // wrong arity
	}
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Errorf("bad translate, err = %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	rows := ageRows(1, 100)
	spec := tightSpec(dp.Range{Lo: 0, Hi: 150})
	if _, err := Run(context.Background(), nil, rows, spec, Options{Epsilon: 1}); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, nil, spec, Options{Epsilon: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, Options{Epsilon: 0}); !errors.Is(err, dp.ErrInvalidEpsilon) {
		t.Error("zero epsilon accepted")
	}
	// Wrong number of output ranges.
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, RangeSpec{Mode: ModeTight}, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Error("missing output ranges accepted")
	}
	// Unknown mode.
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, RangeSpec{Mode: RangeMode(99)}, Options{Epsilon: 1}); !errors.Is(err, ErrRangeSpec) {
		t.Error("unknown mode accepted")
	}
	// Program with zero output dims.
	zero := analytics.Func{ProgName: "z", Dims: 0, F: func([]mathutil.Vec) (mathutil.Vec, error) { return nil, nil }}
	if _, err := Run(context.Background(), zero, rows, RangeSpec{Mode: ModeTight}, Options{Epsilon: 1}); err == nil {
		t.Error("zero-output-dim program accepted")
	}
}

func TestRunMisbehavingProgramSubstituted(t *testing.T) {
	rows := ageRows(6, 1000)
	spec := tightSpec(dp.Range{Lo: 0, Hi: 100})

	// Program that always fails: every block substitutes the range
	// midpoint, so the noisy output concentrates around 50.
	failing := analytics.Func{ProgName: "fail", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		return nil, errors.New("nope")
	}}
	res, err := Run(context.Background(), failing, rows, spec, Options{Epsilon: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != res.NumBlocks {
		t.Errorf("FailedBlocks = %d, want all %d", res.FailedBlocks, res.NumBlocks)
	}
	if math.Abs(res.Output[0]-50) > 5 {
		t.Errorf("substituted output = %v, want ~50", res.Output[0])
	}

	// Program returning the wrong arity is also substituted.
	wrongDims := analytics.Func{ProgName: "wrong", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		return mathutil.Vec{1, 2, 3}, nil
	}}
	res, err = Run(context.Background(), wrongDims, rows, spec, Options{Epsilon: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != res.NumBlocks {
		t.Errorf("wrong-arity FailedBlocks = %d, want all", res.FailedBlocks)
	}

	// A panicking program must not bring down the engine.
	bomb := analytics.Func{ProgName: "bomb", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		panic("boom")
	}}
	if _, err := Run(context.Background(), bomb, rows, spec, Options{Epsilon: 1, Seed: 3}); err != nil {
		t.Errorf("panicking program crashed the run: %v", err)
	}
}

// Output clamping: a program returning values far outside the declared
// range cannot drag the released average beyond it.
func TestRunClampsOutliers(t *testing.T) {
	rows := ageRows(7, 2000)
	liar := analytics.Func{ProgName: "liar", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		return mathutil.Vec{1e12}, nil
	}}
	res, err := Run(context.Background(), liar, rows, tightSpec(dp.Range{Lo: 0, Hi: 100}),
		Options{Epsilon: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] > 110 {
		t.Errorf("clamped average leaked outlier: %v", res.Output[0])
	}
}

func TestRunContextCancellation(t *testing.T) {
	rows := ageRows(8, 5000)
	slow := analytics.Func{ProgName: "slow", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		time.Sleep(time.Second)
		return mathutil.Vec{1}, nil
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, slow, rows, tightSpec(dp.Range{Lo: 0, Hi: 1}), Options{Epsilon: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestRunQuantumKillsSlowBlocks(t *testing.T) {
	rows := ageRows(9, 400)
	slow := analytics.Func{ProgName: "slow", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		time.Sleep(5 * time.Second)
		return mathutil.Vec{1}, nil
	}}
	start := time.Now()
	res, err := Run(context.Background(), slow, rows,
		tightSpec(dp.Range{Lo: 0, Hi: 100}),
		Options{Epsilon: 10, Seed: 1, Quantum: 50 * time.Millisecond, BlockSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != res.NumBlocks {
		t.Errorf("FailedBlocks = %d, want all %d", res.FailedBlocks, res.NumBlocks)
	}
	if math.Abs(res.Output[0]-50) > 10 {
		t.Errorf("killed blocks should release midpoint: %v", res.Output[0])
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("quantum kill took %v", time.Since(start))
	}
}

// Multi-dimensional outputs: each dimension is clamped and noised with its
// own range.
func TestRunMultiDimensional(t *testing.T) {
	rng := mathutil.NewRNG(10)
	rows := make([]mathutil.Vec, 5000)
	for i := range rows {
		rows[i] = mathutil.Vec{10 + rng.NormFloat64(), 1000 + 100*rng.NormFloat64()}
	}
	prog := analytics.Func{ProgName: "means2", Dims: 2, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		var a, b float64
		for _, r := range block {
			a += r[0]
			b += r[1]
		}
		n := float64(len(block))
		return mathutil.Vec{a / n, b / n}, nil
	}}
	spec := tightSpec(dp.Range{Lo: 0, Hi: 20}, dp.Range{Lo: 0, Hi: 2000})
	res, err := Run(context.Background(), prog, rows, spec, Options{Epsilon: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-10) > 2 {
		t.Errorf("dim 0 = %v, want ~10", res.Output[0])
	}
	if math.Abs(res.Output[1]-1000) > 100 {
		t.Errorf("dim 1 = %v, want ~1000", res.Output[1])
	}
}

// Resampling (§4.2): for a nonlinear statistic the variance of the released
// output drops as gamma grows, at the same privacy level (Claim 1).
func TestRunResamplingReducesVariance(t *testing.T) {
	rng := mathutil.NewRNG(11)
	rows := make([]mathutil.Vec, 1200)
	for i := range rows {
		// Skewed data so block medians genuinely vary with the partition.
		rows[i] = mathutil.Vec{mathutil.Clamp(rng.LogNormal(3, 0.8), 0, 150)}
	}
	spec := tightSpec(dp.Range{Lo: 0, Hi: 150})
	spread := func(gamma int) float64 {
		var outs []float64
		for seed := int64(0); seed < 50; seed++ {
			res, err := Run(context.Background(), analytics.Median{Col: 0}, rows, spec,
				Options{Epsilon: 1000, Seed: seed, BlockSize: 60, Gamma: gamma})
			if err != nil {
				t.Fatal(err)
			}
			outs = append(outs, res.Output[0])
		}
		return mathutil.Variance(outs)
	}
	v1, v6 := spread(1), spread(6)
	if v6 >= v1 {
		t.Errorf("gamma=6 variance %v not below gamma=1 variance %v", v6, v1)
	}
}

// Utility guarantee (paper Appendix A, Theorem 2): for an approximately
// normal statistic on i.i.d. data, the private output converges to the true
// statistic as n grows. Measured as mean absolute error over several seeds
// at increasing n; each quadrupling of n should at least halve the error.
func TestRunUtilityConvergence(t *testing.T) {
	spec := tightSpec(dp.Range{Lo: 0, Hi: 150})
	meanErr := func(n int) float64 {
		rows := ageRows(int64(n), n)
		truth := trueMean(rows)
		var total float64
		const trials = 12
		for seed := int64(0); seed < trials; seed++ {
			res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
				Options{Epsilon: 1, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			total += math.Abs(res.Output[0] - truth)
		}
		return total / trials
	}
	small, large := meanErr(1000), meanErr(16000)
	if large > small/2 {
		t.Errorf("error did not converge: n=1000 err %v, n=16000 err %v", small, large)
	}
}

// Property: for any sane configuration, Run returns a result whose output
// arity matches the program and whose metadata is consistent — and it never
// panics.
func TestRunConfigurationProperty(t *testing.T) {
	rows := ageRows(20, 400)
	f := func(epsRaw float64, betaRaw, gammaRaw uint8, seed int64) bool {
		eps := math.Abs(math.Mod(epsRaw, 20)) + 0.01
		beta := int(betaRaw)%100 + 1
		gamma := int(gammaRaw)%3 + 1
		res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows,
			tightSpec(dp.Range{Lo: 0, Hi: 150}),
			Options{Epsilon: eps, Seed: seed, BlockSize: beta, Gamma: gamma})
		if err != nil {
			// Only the documented constraint may reject: gamma exceeding
			// the block count.
			return gamma > gamma*len(rows)/beta
		}
		return len(res.Output) == 1 &&
			res.NumBlocks > 0 &&
			res.BlockSize == beta &&
			res.Gamma == gamma &&
			res.EpsilonSpent == eps &&
			!math.IsNaN(res.Output[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRunWithSubprocessStyleChamberFactory(t *testing.T) {
	// The factory hook is how the platform swaps isolation levels; verify a
	// custom chamber is actually used.
	used := false
	var mu = &used
	rows := ageRows(12, 500)
	opts := Options{
		Epsilon: 5, Seed: 1,
		NewChamber: func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber {
			*mu = true
			return &sandbox.InProcess{Program: prog, Policy: pol}
		},
	}
	if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows,
		tightSpec(dp.Range{Lo: 0, Hi: 150}), opts); err != nil {
		t.Fatal(err)
	}
	if !used {
		t.Error("custom chamber factory was not invoked")
	}
}
