// Package core implements GUPT's primary contribution: the extended
// sample-and-aggregate framework (SAF) of the paper's Algorithm 1, with the
// two accuracy improvements of §4 — resampling (each record placed in γ
// blocks, Claim 1) and tunable block size — plus the three output-range
// estimation modes of §4.1 (GUPT-tight, GUPT-loose, GUPT-helper) and the
// Theorem-1 privacy budget splits.
//
// The engine treats the analysis program as a black box: it partitions the
// dataset, runs the program on every block inside an isolated execution
// chamber, clamps each block's output to the (possibly privately estimated)
// output range, averages across blocks, and releases the average plus
// Laplace noise calibrated so the whole release is ε-differentially
// private.
package core

import (
	"fmt"
	"math"

	"gupt/internal/mathutil"
)

// DefaultBlockSizeExponent is the paper's default: blocks of size n^0.6
// (equivalently ℓ = n^0.4 blocks), from Smith's original analysis.
const DefaultBlockSizeExponent = 0.6

// DefaultBlockSize returns round(n^0.6), the paper's default block size.
func DefaultBlockSize(n int) int {
	if n <= 0 {
		return 0
	}
	b := int(math.Round(math.Pow(float64(n), DefaultBlockSizeExponent)))
	if b < 1 {
		b = 1
	}
	if b > n {
		b = n
	}
	return b
}

// Partition holds the block structure of one SAF run: Blocks[i] lists the
// row indices making up block i. With resampling factor γ > 1 every row
// index appears in exactly γ distinct blocks (paper §4.2); with γ = 1 the
// blocks are a disjoint cover of all rows.
type Partition struct {
	Blocks [][]int
	// BlockSize is the nominal block size β used for noise calibration.
	BlockSize int
	// Gamma is the resampling factor γ (≥ 1).
	Gamma int
	// N is the number of dataset rows partitioned.
	N int
}

// NumBlocks returns ℓ, the number of blocks.
func (p *Partition) NumBlocks() int { return len(p.Blocks) }

// MakePartition builds the block structure for n rows with nominal block
// size β and resampling factor γ, following §4.2: ℓ = γ·n/β bins of
// capacity ~β, each record placed uniformly into γ distinct bins that are
// not yet full. γ = 1 reduces to Algorithm 1's disjoint partition.
//
// Requirements: 1 ≤ β ≤ n and 1 ≤ γ ≤ ℓ (a record cannot occupy more
// distinct blocks than exist).
func MakePartition(rng *mathutil.RNG, n, blockSize, gamma int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: cannot partition %d rows", n)
	}
	if blockSize < 1 || blockSize > n {
		return nil, fmt.Errorf("core: block size %d out of range [1, %d]", blockSize, n)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("core: resampling factor %d must be >= 1", gamma)
	}
	numBlocks := gamma * n / blockSize
	if numBlocks < 1 {
		numBlocks = 1
	}
	if gamma > numBlocks {
		return nil, fmt.Errorf("core: resampling factor %d exceeds block count %d (raise n/β)", gamma, numBlocks)
	}

	// γ = 1 is Algorithm 1's plain partition: a shuffled permutation cut
	// into ℓ contiguous chunks. This is exactly balanced (sizes differ by
	// at most one) and can never produce an empty block — important because
	// an empty block would be substituted by the range midpoint and bias
	// the aggregate.
	if gamma == 1 {
		perm := rng.Perm(n)
		blocks := make([][]int, numBlocks)
		base, extra := n/numBlocks, n%numBlocks
		pos := 0
		for b := range blocks {
			size := base
			if b < extra {
				size++
			}
			blocks[b] = append([]int(nil), perm[pos:pos+size]...)
			pos += size
		}
		return &Partition{Blocks: blocks, BlockSize: blockSize, Gamma: 1, N: n}, nil
	}

	blocks := make([][]int, numBlocks)
	// Capacity ceil(γn/ℓ) keeps bins balanced; the few overflow slots from
	// rounding are absorbed by the relaxation below.
	capacity := (gamma*n + numBlocks - 1) / numBlocks
	sizes := make([]int, numBlocks)

	// notFull lists indices of bins with remaining capacity.
	notFull := make([]int, numBlocks)
	for i := range notFull {
		notFull[i] = i
	}

	scratch := make([]int, 0, gamma)
	for row := 0; row < n; row++ {
		scratch = scratch[:0]
		if len(notFull) >= gamma {
			// Partial Fisher–Yates: draw γ distinct bins from the not-full
			// set, exactly the paper's "randomly placed into γ bins that
			// are not full".
			for j := 0; j < gamma; j++ {
				k := j + rng.Intn(len(notFull)-j)
				notFull[j], notFull[k] = notFull[k], notFull[j]
				scratch = append(scratch, notFull[j])
			}
		} else {
			// Tail relaxation: fewer than γ bins still have room (possible
			// only in the last few rows because of rounding). Take every
			// not-full bin, then top up with the least-loaded full bins so
			// the record still lands in γ distinct blocks.
			scratch = append(scratch, notFull...)
			for len(scratch) < gamma {
				best, bestLoad := -1, math.MaxInt
				for b := 0; b < numBlocks; b++ {
					if containsInt(scratch, b) {
						continue
					}
					if sizes[b] < bestLoad {
						best, bestLoad = b, sizes[b]
					}
				}
				scratch = append(scratch, best)
			}
		}
		for _, b := range scratch {
			blocks[b] = append(blocks[b], row)
			sizes[b]++
		}
		// Drop bins that just filled from the not-full set.
		for i := 0; i < len(notFull); {
			if sizes[notFull[i]] >= capacity {
				notFull[i] = notFull[len(notFull)-1]
				notFull = notFull[:len(notFull)-1]
			} else {
				i++
			}
		}
	}

	// Random placement can leave a bin empty when capacities are small
	// (the slack between ℓ·capacity and γn). Steal one record from the
	// currently largest bin for each empty one; the recipient is empty, so
	// the exactly-γ-distinct-blocks invariant trivially holds.
	for b := range blocks {
		if len(blocks[b]) > 0 {
			continue
		}
		largest := 0
		for i := range blocks {
			if len(blocks[i]) > len(blocks[largest]) {
				largest = i
			}
		}
		if len(blocks[largest]) <= 1 {
			continue // nothing to steal; cannot happen with n >= numBlocks
		}
		donor := blocks[largest]
		blocks[b] = append(blocks[b], donor[len(donor)-1])
		blocks[largest] = donor[:len(donor)-1]
	}

	return &Partition{Blocks: blocks, BlockSize: blockSize, Gamma: gamma, N: n}, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Sensitivity returns the L1 sensitivity of the block-output average for a
// single output dimension with the given clamped output width: a record
// appears in γ blocks, each block's clamped output can move by at most
// width, and the average divides by ℓ — so γ·width/ℓ, which equals
// β·width/n when ℓ = γn/β exactly (the Lap(β·|max−min|/(n·ε)) of §4.2).
func (p *Partition) Sensitivity(width float64) float64 {
	return float64(p.Gamma) * width / float64(p.NumBlocks())
}

// Materialize returns the rows of block i as copies drawn from rows.
func (p *Partition) Materialize(rows []mathutil.Vec, i int) []mathutil.Vec {
	idx := p.Blocks[i]
	out := make([]mathutil.Vec, len(idx))
	for j, r := range idx {
		out[j] = rows[r].Clone()
	}
	return out
}

// View returns the rows of block i aliasing rows directly — one slice
// header allocation, zero row copies. Only hand views to chambers that
// declare sandbox.ReadOnlyChamber: a mutating consumer would corrupt the
// dataset for every other block sharing those rows (γ > 1) and for every
// later query.
func (p *Partition) View(rows []mathutil.Vec, i int) []mathutil.Vec {
	idx := p.Blocks[i]
	out := make([]mathutil.Vec, len(idx))
	for j, r := range idx {
		out[j] = rows[r]
	}
	return out
}
