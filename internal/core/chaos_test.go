package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/faultinject"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

// faultFactory returns a chamber factory that wraps the in-process chamber
// with a fault-injecting one driven by the given schedule.
func faultFactory(sched *faultinject.Schedule, dims int) func(analytics.Program, sandbox.Policy) sandbox.Chamber {
	return func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber {
		return &faultinject.Chamber{
			Inner:      &sandbox.InProcess{Program: prog, Policy: pol},
			Schedule:   sched,
			OutputDims: dims,
		}
	}
}

// The DP guarantee must hold under every fault schedule: failures are
// replaced by the data-independent range midpoint, so a chamber crashing,
// emitting garbage, or smuggling out-of-range magnitudes must not widen the
// empirical likelihood ratio beyond ε. This reuses the dpcheck harness with
// a per-run fault chamber whose schedule seed equals the run seed, so every
// failure pattern reproduces exactly.
//
// Only instantaneous faults appear here — hang and slow-start are exercised
// separately (they would multiply 2×20000 engine runs by their sleep time).
func TestChaosDPUnderFaultSchedules(t *testing.T) {
	const eps = 1.0
	schedules := map[string]map[faultinject.Kind]float64{
		"crash-heavy": {
			faultinject.CrashBefore: 0.20,
			faultinject.CrashAfter:  0.10,
		},
		"garbage-heavy": {
			faultinject.Garbage:    0.15,
			faultinject.OutOfRange: 0.15,
			faultinject.WrongArity: 0.10,
		},
		"mixed": {
			faultinject.CrashBefore: 0.10,
			faultinject.Garbage:     0.10,
			faultinject.OutOfRange:  0.05,
			faultinject.WrongArity:  0.05,
		},
	}
	for name, rates := range schedules {
		rates := rates
		t.Run(name, func(t *testing.T) {
			adjust := func(o *Options, seed int64) {
				sched := &faultinject.Schedule{Seed: seed, Rates: rates}
				o.NewChamber = faultFactory(sched, 1)
			}
			worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8}, ModeTight, dp.Range{}, 12000, adjust)
			if worst > eps+dpSlack {
				t.Errorf("%s: empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", name, worst, eps)
			}
		})
	}
}

// chaosRun executes one engine run over all seven fault kinds cycling
// deterministically across the blocks.
func chaosRun(t *testing.T, seed int64) (*Result, *faultinject.Schedule) {
	t.Helper()
	rows := make([]mathutil.Vec, 400)
	for i := range rows {
		rows[i] = mathutil.Vec{float64(20 + i%10)}
	}
	sched := &faultinject.Schedule{
		Plan: []faultinject.Kind{
			faultinject.None,
			faultinject.CrashBefore,
			faultinject.CrashAfter,
			faultinject.Hang,
			faultinject.Garbage,
			faultinject.OutOfRange,
			faultinject.WrongArity,
			faultinject.SlowStart,
		},
		HangFor: 10 * time.Second,      // backstop only; BlockTimeout reclaims hung blocks
		SlowBy:  500 * time.Microsecond, // well inside BlockTimeout: slow-starts must succeed
	}
	res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 100}}},
		Options{
			Epsilon:      1,
			BlockSize:    5, // 80 blocks → each fault kind fires 10 times
			Seed:         seed,
			Parallelism:  1, // sequential execution pins the fault-to-block mapping
			BlockTimeout: 50 * time.Millisecond,
			NewChamber:   faultFactory(sched, 1),
		})
	if err != nil {
		t.Fatal(err)
	}
	return res, sched
}

// One run, all fault kinds at once: crash-before, crash-after, hang,
// garbage, out-of-range, wrong-arity and slow-start each hit 10 of 80
// blocks. The run must complete, substitute exactly the failing kinds
// (crashes, hang, garbage, wrong arity — 50 blocks), pass out-of-range
// outputs to the clamp, and let slow starts finish.
func TestChaosAllFaultKindsAccounted(t *testing.T) {
	res, sched := chaosRun(t, 1)
	if got := sched.Counts()[faultinject.Hang]; got != 10 {
		t.Errorf("hang injections = %d, want 10", got)
	}
	// 5 failing kinds × 10 blocks; OutOfRange and SlowStart must NOT fail.
	if res.FailedBlocks != 50 {
		t.Errorf("FailedBlocks = %d, want 50", res.FailedBlocks)
	}
	if res.NumBlocks != 80 {
		t.Errorf("NumBlocks = %d, want 80", res.NumBlocks)
	}
	if want := 50.0 / 80; res.SubstitutionRate() != want {
		t.Errorf("SubstitutionRate = %v, want %v", res.SubstitutionRate(), want)
	}
	if math.IsNaN(res.Output[0]) || math.IsInf(res.Output[0], 0) {
		t.Errorf("garbage leaked into the release: output %v", res.Output)
	}
	// Clamping bounds the release: mean of clamped blocks is within the
	// declared range, and Laplace noise at ε=1 cannot carry it to ±1e12.
	if res.Output[0] < -1e3 || res.Output[0] > 1e3 {
		t.Errorf("out-of-range outputs dominated the release: %v", res.Output[0])
	}
}

// The same seed must reproduce the chaos run exactly — output bits, failure
// count and fault schedule all derive from it.
func TestChaosDeterministicReplay(t *testing.T) {
	a, _ := chaosRun(t, 42)
	b, _ := chaosRun(t, 42)
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("outputs differ across identical chaos runs: %v vs %v", a.Output, b.Output)
	}
	if a.FailedBlocks != b.FailedBlocks {
		t.Errorf("failure counts differ: %d vs %d", a.FailedBlocks, b.FailedBlocks)
	}
	c, _ := chaosRun(t, 43)
	if reflect.DeepEqual(a.Output, c.Output) {
		t.Error("different seeds produced identical outputs")
	}
}

// A hung chamber must cost one substituted block, not the query: the
// per-block deadline reclaims it.
func TestBlockTimeoutSubstitutesHungBlock(t *testing.T) {
	rows := make([]mathutil.Vec, 64)
	for i := range rows {
		rows[i] = mathutil.Vec{30}
	}
	sched := &faultinject.Schedule{
		Plan:    []faultinject.Kind{faultinject.Hang, faultinject.None, faultinject.None, faultinject.None},
		HangFor: 10 * time.Second,
	}
	start := time.Now()
	res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 100}}},
		Options{
			Epsilon:      1,
			BlockSize:    16,
			Parallelism:  1,
			BlockTimeout: 50 * time.Millisecond,
			NewChamber:   faultFactory(sched, 1),
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != 1 {
		t.Errorf("FailedBlocks = %d, want 1 (the hung block)", res.FailedBlocks)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("query took %v; the hung block should cost ~BlockTimeout", elapsed)
	}
}

// Without a block timeout the caller's context is the only bound; engine
// must surface its cancellation as an abort, not a substituted result.
func TestHangWithoutBlockTimeoutAbortsOnContext(t *testing.T) {
	rows := make([]mathutil.Vec, 64)
	for i := range rows {
		rows[i] = mathutil.Vec{30}
	}
	sched := &faultinject.Schedule{
		Plan:    []faultinject.Kind{faultinject.Hang},
		HangFor: 10 * time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, analytics.Mean{Col: 0}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 100}}},
		Options{Epsilon: 1, BlockSize: 16, Parallelism: 1, NewChamber: faultFactory(sched, 1)})
	if err == nil {
		t.Fatal("cancelled run returned a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context deadline", err)
	}
}

// MaxFailFrac turns a mostly-substituted release into a refusal.
func TestMaxFailFracAborts(t *testing.T) {
	rows := make([]mathutil.Vec, 64)
	for i := range rows {
		rows[i] = mathutil.Vec{30}
	}
	sched := &faultinject.Schedule{Plan: []faultinject.Kind{faultinject.CrashBefore}}
	_, err := Run(context.Background(), analytics.Mean{Col: 0}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 100}}},
		Options{
			Epsilon:     1,
			BlockSize:   16,
			Parallelism: 1,
			MaxFailFrac: 0.5,
			NewChamber:  faultFactory(sched, 1),
		})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("err = %v, want ErrTooManyFailures", err)
	}
}

// Non-finite program outputs are substituted, never aggregated: a single
// NaN would otherwise ride through clamping into the released mean.
func TestNonFiniteOutputSubstituted(t *testing.T) {
	rows := make([]mathutil.Vec, 64)
	for i := range rows {
		rows[i] = mathutil.Vec{30}
	}
	poison := analytics.Func{
		ProgName: "poison",
		Dims:     1,
		F: func(block []mathutil.Vec) (mathutil.Vec, error) {
			return mathutil.Vec{math.NaN()}, nil
		},
	}
	res, err := Run(context.Background(), poison, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 100}}},
		Options{Epsilon: 1, BlockSize: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != res.NumBlocks {
		t.Errorf("FailedBlocks = %d, want all %d", res.FailedBlocks, res.NumBlocks)
	}
	if math.IsNaN(res.Output[0]) {
		t.Error("NaN leaked into the released output")
	}
}
