package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// engineMaxLogRatio samples the full pipeline on a dataset and its
// neighbor (one record moved to the range edge) and returns the largest
// empirical log-likelihood ratio over a histogram of outputs. adjust, when
// non-nil, customizes each run's Options after the seed is set — the chaos
// suite uses it to install a per-run fault-injecting chamber (chaos_test.go)
// so the same harness verifies DP under failure schedules.
func engineMaxLogRatio(t *testing.T, opts Options, mode RangeMode, looseRange dp.Range, samples int, adjust func(o *Options, seed int64)) float64 {
	t.Helper()
	const (
		n    = 40
		bins = 20
	)
	r := dp.Range{Lo: 0, Hi: 100}
	mkRows := func(outlier bool) []mathutil.Vec {
		rows := make([]mathutil.Vec, n)
		for i := range rows {
			rows[i] = mathutil.Vec{30}
		}
		if outlier {
			rows[0][0] = 100 // the neighboring record at the range edge
		}
		return rows
	}
	spec := RangeSpec{Mode: mode, Output: []dp.Range{r}}
	if mode == ModeLoose {
		spec.Output = []dp.Range{looseRange}
	}
	sample := func(rows []mathutil.Vec) []float64 {
		out := make([]float64, samples)
		for seed := 0; seed < samples; seed++ {
			o := opts
			o.Seed = int64(seed)
			o.Parallelism = 1
			if adjust != nil {
				adjust(&o, int64(seed))
			}
			res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, o)
			if err != nil {
				t.Fatal(err)
			}
			out[seed] = res.Output[0]
		}
		return out
	}

	a := sample(mkRows(false))
	b := sample(mkRows(true))

	pooled := append(append([]float64(nil), a...), b...)
	sort.Float64s(pooled)
	lo, hi := pooled[0], pooled[len(pooled)-1]
	width := (hi - lo) / bins
	countA := make([]int, bins)
	countB := make([]int, bins)
	binOf := func(x float64) int {
		i := int((x - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	for i := 0; i < samples; i++ {
		countA[binOf(a[i])]++
		countB[binOf(b[i])]++
	}
	worst := 0.0
	for i := 0; i < bins; i++ {
		if countA[i] < 40 || countB[i] < 40 {
			continue
		}
		ratio := math.Abs(math.Log(float64(countA[i]) / float64(countB[i])))
		if ratio > worst {
			worst = ratio
		}
	}
	if worst == 0 {
		t.Error("neighbor change invisible — vacuous check")
	}
	return worst
}

// dpSlack is the tolerance added to ε in the empirical likelihood-ratio
// bound. Derivation: a bin accepted by the ≥40-count floor contributes a
// log-count-ratio whose finite-sample standard error is at most
// √(1/cA + 1/cB) ≤ √(2/40) ≈ 0.22; taking the max over ≤20 bins pushes the
// expected extreme to roughly 2σ ≈ 0.45. 0.5 therefore covers estimator
// noise without masking a real budget miscount, which would overshoot by
// a factor (e.g. a forgotten 2× sensitivity doubles the exponent, landing
// near 2ε ≫ ε + 0.5). Seeds are pinned (run seed = sample index), so the
// statistic is reproducible bit-for-bit; the slack covers estimator bias,
// not run-to-run variance.
const dpSlack = 0.5

// End-to-end empirical ε-DP check of the whole sample-and-aggregate
// pipeline: partition randomness, clamping, averaging and noise together
// must satisfy the likelihood bound on neighboring datasets. Statistical,
// deterministic seeds, slack per dpSlack — it exists to catch sensitivity
// and budget-split miscounting in the engine itself.
func TestEngineEndToEndDP(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8}, ModeTight, dp.Range{}, 20000, nil)
	if worst > eps+dpSlack {
		t.Errorf("end-to-end empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}

// The resampling path has the subtlest sensitivity argument (one record in
// γ blocks); verify it empirically at γ = 2.
func TestEngineEndToEndDPResampled(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8, Gamma: 2}, ModeTight, dp.Range{}, 20000, nil)
	if worst > eps+dpSlack {
		t.Errorf("resampled pipeline empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}

// Loose mode spends budget on range estimation and clamps to an estimated
// range; the whole composite must still sit within ε.
func TestEngineEndToEndDPLooseMode(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8}, ModeLoose, dp.Range{Lo: 0, Hi: 200}, 20000, nil)
	if worst > eps+dpSlack {
		t.Errorf("loose-mode empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}
