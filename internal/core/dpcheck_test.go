package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// engineMaxLogRatio samples the full pipeline on a dataset and its
// neighbor (one record moved to the range edge) and returns the largest
// empirical log-likelihood ratio over a histogram of outputs.
func engineMaxLogRatio(t *testing.T, opts Options, mode RangeMode, looseRange dp.Range, samples int) float64 {
	t.Helper()
	const (
		n    = 40
		bins = 20
	)
	r := dp.Range{Lo: 0, Hi: 100}
	mkRows := func(outlier bool) []mathutil.Vec {
		rows := make([]mathutil.Vec, n)
		for i := range rows {
			rows[i] = mathutil.Vec{30}
		}
		if outlier {
			rows[0][0] = 100 // the neighboring record at the range edge
		}
		return rows
	}
	spec := RangeSpec{Mode: mode, Output: []dp.Range{r}}
	if mode == ModeLoose {
		spec.Output = []dp.Range{looseRange}
	}
	sample := func(rows []mathutil.Vec) []float64 {
		out := make([]float64, samples)
		for seed := 0; seed < samples; seed++ {
			o := opts
			o.Seed = int64(seed)
			o.Parallelism = 1
			res, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec, o)
			if err != nil {
				t.Fatal(err)
			}
			out[seed] = res.Output[0]
		}
		return out
	}

	a := sample(mkRows(false))
	b := sample(mkRows(true))

	pooled := append(append([]float64(nil), a...), b...)
	sort.Float64s(pooled)
	lo, hi := pooled[0], pooled[len(pooled)-1]
	width := (hi - lo) / bins
	countA := make([]int, bins)
	countB := make([]int, bins)
	binOf := func(x float64) int {
		i := int((x - lo) / width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	for i := 0; i < samples; i++ {
		countA[binOf(a[i])]++
		countB[binOf(b[i])]++
	}
	worst := 0.0
	for i := 0; i < bins; i++ {
		if countA[i] < 40 || countB[i] < 40 {
			continue
		}
		ratio := math.Abs(math.Log(float64(countA[i]) / float64(countB[i])))
		if ratio > worst {
			worst = ratio
		}
	}
	if worst == 0 {
		t.Error("neighbor change invisible — vacuous check")
	}
	return worst
}

// End-to-end empirical ε-DP check of the whole sample-and-aggregate
// pipeline: partition randomness, clamping, averaging and noise together
// must satisfy the likelihood bound on neighboring datasets. Statistical,
// deterministic seeds, generous slack — it exists to catch sensitivity and
// budget-split miscounting in the engine itself.
func TestEngineEndToEndDP(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8}, ModeTight, dp.Range{}, 20000)
	if worst > eps+0.5 {
		t.Errorf("end-to-end empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}

// The resampling path has the subtlest sensitivity argument (one record in
// γ blocks); verify it empirically at γ = 2.
func TestEngineEndToEndDPResampled(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8, Gamma: 2}, ModeTight, dp.Range{}, 20000)
	if worst > eps+0.5 {
		t.Errorf("resampled pipeline empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}

// Loose mode spends budget on range estimation and clamps to an estimated
// range; the whole composite must still sit within ε.
func TestEngineEndToEndDPLooseMode(t *testing.T) {
	const eps = 1.0
	worst := engineMaxLogRatio(t, Options{Epsilon: eps, BlockSize: 8}, ModeLoose, dp.Range{Lo: 0, Hi: 200}, 20000)
	if worst > eps+0.5 {
		t.Errorf("loose-mode empirical log-likelihood ratio %.2f exceeds eps=%v (+slack)", worst, eps)
	}
}
