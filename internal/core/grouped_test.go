package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// userRows builds rows of (userID, value): users records each.
func userRows(seed int64, users, recordsPerUser int) []mathutil.Vec {
	rng := mathutil.NewRNG(seed)
	var rows []mathutil.Vec
	for u := 0; u < users; u++ {
		base := 40 + 10*rng.NormFloat64()
		for r := 0; r < recordsPerUser; r++ {
			rows = append(rows, mathutil.Vec{float64(u), mathutil.Clamp(base+rng.NormFloat64(), 0, 150)})
		}
	}
	return rows
}

func TestGroupRowsByColumn(t *testing.T) {
	rows := userRows(1, 10, 3)
	groups, err := GroupRowsByColumn(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 10 {
		t.Fatalf("got %d groups, want 10", len(groups))
	}
	for gi, g := range groups {
		if len(g) != 3 {
			t.Errorf("group %d has %d rows, want 3", gi, len(g))
		}
		for _, r := range g {
			if rows[r][0] != float64(gi) {
				t.Errorf("group %d contains row of user %v", gi, rows[r][0])
			}
		}
	}
	if _, err := GroupRowsByColumn(rows, 9); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := GroupRowsByColumn(nil, 0); err == nil {
		t.Error("empty rows accepted")
	}
}

func TestMakeGroupedPartitionKeepsUsersTogether(t *testing.T) {
	rows := userRows(2, 50, 4) // 200 rows
	groups, err := GroupRowsByColumn(rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := MakeGroupedPartition(mathutil.NewRNG(3), len(rows), groups, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Each user's rows all live in exactly one block.
	userBlock := map[float64]int{}
	counts := map[int]int{}
	for b, block := range p.Blocks {
		for _, r := range block {
			u := rows[r][0]
			if prev, ok := userBlock[u]; ok && prev != b {
				t.Fatalf("user %v split across blocks %d and %d", u, prev, b)
			}
			userBlock[u] = b
			counts[r]++
		}
	}
	for r := range rows {
		if counts[r] != 1 {
			t.Fatalf("row %d appears %d times", r, counts[r])
		}
	}
}

func TestMakeGroupedPartitionResampling(t *testing.T) {
	rows := userRows(4, 60, 2) // 120 rows
	groups, _ := GroupRowsByColumn(rows, 0)
	const gamma = 3
	p, err := MakeGroupedPartition(mathutil.NewRNG(5), len(rows), groups, 12, gamma)
	if err != nil {
		t.Fatal(err)
	}
	// Each user appears intact in exactly gamma distinct blocks.
	userBlocks := map[float64]map[int]int{}
	for b, block := range p.Blocks {
		for _, r := range block {
			u := rows[r][0]
			if userBlocks[u] == nil {
				userBlocks[u] = map[int]int{}
			}
			userBlocks[u][b]++
		}
	}
	for u, blocks := range userBlocks {
		if len(blocks) != gamma {
			t.Fatalf("user %v in %d blocks, want %d", u, len(blocks), gamma)
		}
		for b, c := range blocks {
			if c != 2 { // both records, intact
				t.Fatalf("user %v has %d records in block %d, want 2", u, c, b)
			}
		}
	}
}

func TestMakeGroupedPartitionValidation(t *testing.T) {
	rng := mathutil.NewRNG(1)
	cases := []struct {
		name      string
		n         int
		groups    [][]int
		beta, gam int
	}{
		{"no groups", 4, nil, 2, 1},
		{"empty group", 4, [][]int{{0, 1}, {}}, 2, 1},
		{"group too large", 4, [][]int{{0, 1, 2}, {3}}, 2, 1},
		{"row out of range", 4, [][]int{{0, 9}}, 2, 1},
		{"duplicate row", 4, [][]int{{0, 1}, {1, 2}}, 2, 1},
		{"missing rows", 4, [][]int{{0, 1}}, 2, 1},
		{"bad beta", 4, [][]int{{0}, {1}, {2}, {3}}, 0, 1},
		{"bad gamma", 4, [][]int{{0}, {1}, {2}, {3}}, 2, 0},
	}
	for _, c := range cases {
		if _, err := MakeGroupedPartition(rng, c.n, c.groups, c.beta, c.gam); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Property: grouped partitions never split a group and cover each row
// exactly gamma times.
func TestMakeGroupedPartitionProperty(t *testing.T) {
	f := func(usersRaw, perUserRaw uint8, seed int64) bool {
		users := int(usersRaw%20) + 2
		perUser := int(perUserRaw%4) + 1
		n := users * perUser
		rows := userRows(seed, users, perUser)
		groups, err := GroupRowsByColumn(rows, 0)
		if err != nil {
			return false
		}
		beta := perUser * 3
		if beta > n {
			beta = n
		}
		p, err := MakeGroupedPartition(mathutil.NewRNG(seed), n, groups, beta, 1)
		if err != nil {
			return false
		}
		counts := make([]int, n)
		for _, block := range p.Blocks {
			blockUsers := map[float64]bool{}
			for _, r := range block {
				counts[r]++
				blockUsers[rows[r][0]] = true
			}
			// Every user present in a block is fully present.
			for u := range blockUsers {
				inBlock := 0
				for _, r := range block {
					if rows[r][0] == u {
						inBlock++
					}
				}
				if inBlock != perUser {
					return false
				}
			}
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRunUserLevel(t *testing.T) {
	rows := userRows(6, 400, 5) // 2000 rows, 400 users
	res, err := Run(context.Background(), analytics.Mean{Col: 1}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}},
		Options{Epsilon: 5, Seed: 7, BlockSize: 50, UserLevel: true, UserColumn: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40) > 10 {
		t.Errorf("user-level mean = %v, want ~40", res.Output[0])
	}
}

func TestRunUserLevelRejectsOversizedUser(t *testing.T) {
	// One user owns more rows than a block can hold: refuse rather than
	// silently weaken the guarantee.
	rows := userRows(8, 2, 50) // 2 users x 50 records
	_, err := Run(context.Background(), analytics.Mean{Col: 1}, rows,
		RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}},
		Options{Epsilon: 1, Seed: 1, BlockSize: 10, UserLevel: true, UserColumn: 0})
	if err == nil {
		t.Fatal("oversized user accepted")
	}
}
