package core

import (
	"context"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func benchRows(n int) []mathutil.Vec {
	rng := mathutil.NewRNG(1)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	return rows
}

func BenchmarkMakePartition(b *testing.B) {
	rng := mathutil.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := MakePartition(rng, 30000, 450, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakePartitionResampled(b *testing.B) {
	rng := mathutil.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := MakePartition(rng, 30000, 450, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMeanQuery(b *testing.B) {
	rows := benchRows(30000)
	spec := RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
			Options{Epsilon: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestViewAllocations pins the zero-copy hand-off contract: View performs
// exactly one allocation (the header slice aliasing the dataset's rows),
// regardless of block size. Materialize clones every row, so its allocation
// count grows with the block — the cost View exists to avoid on the worker
// wire path, where the encoder reads the row floats directly.
func TestViewAllocations(t *testing.T) {
	rng := mathutil.NewRNG(7)
	rows := benchRows(10000)
	part, err := MakePartition(rng, len(rows), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sink []mathutil.Vec
	allocs := testing.AllocsPerRun(100, func() {
		sink = part.View(rows, 0)
	})
	if allocs != 1 {
		t.Fatalf("View allocates %.0f times per call, want exactly 1", allocs)
	}
	_ = sink

	// The views must alias, not copy: mutating a row through the dataset
	// must be visible through the view (this is why only chambers that
	// declare ReadOnlyBlocks get views).
	v := part.View(rows, 0)
	if &v[0][0] != &rows[part.Blocks[0][0]][0] {
		t.Fatal("View copied row storage instead of aliasing it")
	}
}

func BenchmarkPartitionView(b *testing.B) {
	rng := mathutil.NewRNG(7)
	rows := benchRows(30000)
	part, err := MakePartition(rng, len(rows), 450, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < part.NumBlocks(); j++ {
			_ = part.View(rows, j)
		}
	}
}

func BenchmarkPartitionMaterialize(b *testing.B) {
	rng := mathutil.NewRNG(7)
	rows := benchRows(30000)
	part, err := MakePartition(rng, len(rows), 450, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < part.NumBlocks(); j++ {
			_ = part.Materialize(rows, j)
		}
	}
}

func BenchmarkRunLooseMode(b *testing.B) {
	rows := benchRows(30000)
	spec := RangeSpec{Mode: ModeLoose, Output: []dp.Range{{Lo: 0, Hi: 300}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
			Options{Epsilon: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
