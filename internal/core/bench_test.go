package core

import (
	"context"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func benchRows(n int) []mathutil.Vec {
	rng := mathutil.NewRNG(1)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	return rows
}

func BenchmarkMakePartition(b *testing.B) {
	rng := mathutil.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := MakePartition(rng, 30000, 450, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakePartitionResampled(b *testing.B) {
	rng := mathutil.NewRNG(1)
	for i := 0; i < b.N; i++ {
		if _, err := MakePartition(rng, 30000, 450, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMeanQuery(b *testing.B) {
	rows := benchRows(30000)
	spec := RangeSpec{Mode: ModeTight, Output: []dp.Range{{Lo: 0, Hi: 150}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
			Options{Epsilon: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLooseMode(b *testing.B) {
	rows := benchRows(30000)
	spec := RangeSpec{Mode: ModeLoose, Output: []dp.Range{{Lo: 0, Hi: 300}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), analytics.Mean{Col: 0}, rows, spec,
			Options{Epsilon: 1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
