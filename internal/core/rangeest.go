package core

import (
	"errors"
	"fmt"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// RangeMode selects how the engine obtains the per-dimension output range
// that calibrates clamping and noise (paper §4.1).
type RangeMode int

const (
	// ModeTight (GUPT-tight): the analyst supplies exact output ranges; the
	// whole budget goes to aggregation.
	ModeTight RangeMode = iota
	// ModeLoose (GUPT-loose): the analyst supplies loose output ranges; the
	// engine privately estimates the 25th–75th percentile of the block
	// outputs inside them and uses that as the effective range.
	ModeLoose
	// ModeHelper (GUPT-helper): the analyst supplies a range-translation
	// function; the engine privately estimates each input dimension's
	// 25th–75th percentile inside the dataset's public input bounds, then
	// translates that tight input range into an output range.
	ModeHelper
)

// String implements fmt.Stringer.
func (m RangeMode) String() string {
	switch m {
	case ModeTight:
		return "GUPT-tight"
	case ModeLoose:
		return "GUPT-loose"
	case ModeHelper:
		return "GUPT-helper"
	default:
		return fmt.Sprintf("RangeMode(%d)", int(m))
	}
}

// ErrRangeSpec is returned when a RangeSpec is inconsistent with its mode.
var ErrRangeSpec = errors.New("core: invalid range specification")

// RangeSpec carries the analyst's range information for one query.
type RangeSpec struct {
	Mode RangeMode
	// Output holds per-output-dimension ranges: exact for ModeTight, loose
	// for ModeLoose. Unused by ModeHelper.
	Output []dp.Range
	// Input holds per-input-dimension public bounds for ModeHelper. If nil
	// the engine falls back to the dataset's registered attribute ranges.
	Input []dp.Range
	// Translate converts a tight input range estimate into output ranges
	// for ModeHelper. It must be a pure function of its argument; it runs
	// on the trusted side and must not inspect data.
	Translate func(input []dp.Range) []dp.Range
	// PercentileLow and PercentileHigh select the inter-percentile pair the
	// private range estimation targets; zero values select the paper's
	// default (0.25, 0.75). Wider pairs (e.g. 0.10, 0.90) suit larger
	// samples (§4.1).
	PercentileLow, PercentileHigh float64
}

// percentilePair resolves the estimation pair with defaults.
func (s RangeSpec) percentilePair() (float64, float64) {
	lo, hi := s.PercentileLow, s.PercentileHigh
	if lo == 0 && hi == 0 {
		return 0.25, 0.75
	}
	return lo, hi
}

// validate checks the spec against the program's dimensions.
func (s RangeSpec) validate(inputDims, outputDims int) error {
	switch s.Mode {
	case ModeTight, ModeLoose:
		if len(s.Output) != outputDims {
			return fmt.Errorf("%w: %s needs %d output ranges, got %d", ErrRangeSpec, s.Mode, outputDims, len(s.Output))
		}
		for i, r := range s.Output {
			if err := r.Validate(); err != nil {
				return fmt.Errorf("%w: output dim %d: %v", ErrRangeSpec, i, err)
			}
		}
	case ModeHelper:
		if s.Translate == nil {
			return fmt.Errorf("%w: %s needs a Translate function", ErrRangeSpec, s.Mode)
		}
		if s.Input != nil && len(s.Input) != inputDims {
			return fmt.Errorf("%w: %s got %d input ranges for %d input dims", ErrRangeSpec, s.Mode, len(s.Input), inputDims)
		}
	default:
		return fmt.Errorf("%w: unknown mode %d", ErrRangeSpec, int(s.Mode))
	}
	lo, hi := s.percentilePair()
	if !(lo > 0 && hi < 1 && lo < hi) {
		return fmt.Errorf("%w: percentile pair (%v, %v) must satisfy 0 < lo < hi < 1", ErrRangeSpec, lo, hi)
	}
	return nil
}

// estimateHelperRanges performs GUPT-helper's private input-range tightening:
// for each input dimension, a DP inter-percentile estimate inside the
// public bound, spending rangeEps per dimension, then the analyst's
// translation.
func estimateHelperRanges(rng *mathutil.RNG, rows []mathutil.Vec, spec RangeSpec, input []dp.Range, rangeEps float64, outputDims int) ([]dp.Range, error) {
	pLo, pHi := spec.percentilePair()
	tight := make([]dp.Range, len(input))
	col := make([]float64, len(rows))
	for d := range input {
		for i, r := range rows {
			col[i] = r[d]
		}
		iqr, err := dp.PercentileRange(rng, col, pLo, pHi, input[d], rangeEps)
		if err != nil {
			return nil, fmt.Errorf("core: helper range estimation dim %d: %w", d, err)
		}
		tight[d] = iqr
	}
	out := spec.Translate(tight)
	if len(out) != outputDims {
		return nil, fmt.Errorf("%w: Translate returned %d ranges for %d output dims", ErrRangeSpec, len(out), outputDims)
	}
	for i, r := range out {
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("%w: translated output dim %d: %v", ErrRangeSpec, i, err)
		}
	}
	return out, nil
}

// estimateLooseRanges performs GUPT-loose's private output-range tightening:
// a DP interquartile estimate of each output dimension across the block
// outputs, inside the analyst's loose bound. One block output changes when
// one record changes, but with resampling a record touches γ blocks, so the
// percentile mechanism runs at rangeEps/γ per dimension (group privacy) to
// keep the charged rangeEps honest.
func estimateLooseRanges(rng *mathutil.RNG, blockOutputs *blockMatrix, spec RangeSpec, rangeEps float64, gamma int) ([]dp.Range, error) {
	pLo, pHi := spec.percentilePair()
	out := make([]dp.Range, len(spec.Output))
	for d := range spec.Output {
		// The column-major block matrix hands the estimator dimension d's
		// values as one contiguous view — the per-dimension gather copy the
		// row-major layout needed is gone.
		iqr, err := dp.PercentileRange(rng, blockOutputs.col(d), pLo, pHi, spec.Output[d], rangeEps/float64(gamma))
		if err != nil {
			return nil, fmt.Errorf("core: loose range estimation dim %d: %w", d, err)
		}
		out[d] = iqr
	}
	return out, nil
}
