package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
	"gupt/internal/telemetry"
)

// Options configures one sample-and-aggregate run.
type Options struct {
	// Epsilon is the query's total privacy budget (required, > 0). The
	// engine never spends more than this; how it is divided between range
	// estimation and aggregation follows Theorem 1 for the chosen mode.
	Epsilon float64
	// BlockSize is the nominal block size β; 0 selects the paper's default
	// n^0.6. Use internal/aging.OptimizeBlockSize to tune it from aged data.
	BlockSize int
	// Gamma is the resampling factor γ of §4.2; 0 or 1 disables resampling.
	Gamma int
	// Seed makes the run deterministic: partitioning, range estimation and
	// noise all derive from it.
	Seed int64
	// Parallelism bounds concurrent block executions; 0 selects GOMAXPROCS.
	Parallelism int
	// Quantum, when positive, enforces the timing-attack defense: every
	// block execution consumes exactly this wall-clock time (paper §6.2).
	Quantum time.Duration
	// BlockTimeout, when positive, bounds each block execution's wall-clock
	// time from outside the chamber: a block whose chamber has not returned
	// by the deadline is abandoned and contributes the substitute value.
	// Unlike Quantum (enforced inside the chamber, and also a lower bound),
	// this guards against chambers that are themselves wedged — hung worker
	// connections, stuck subprocesses — so a single bad executor degrades
	// accuracy instead of stalling the query forever.
	BlockTimeout time.Duration
	// MaxFailFrac, when positive, aborts the run with ErrTooManyFailures if
	// more than this fraction of blocks was substituted — a quality guard
	// for operational failures (dead workers), since a result computed
	// mostly from substitutes is noise around a constant. Note the abort
	// signal reveals the failure count, exactly as Result.FailedBlocks
	// already does; see SECURITY.md on the failure-channel trade-off.
	MaxFailFrac float64
	// NewChamber builds the isolation chamber used for block executions;
	// nil selects an in-process chamber. The hosted platform injects a
	// subprocess chamber here.
	NewChamber func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber
	// UserLevel switches the privacy unit from records to users: all rows
	// sharing the value of UserColumn are placed in the same block(s), so
	// the ε guarantee covers a user's entire record set (paper §8.1,
	// implemented as an extension — see MakeGroupedPartition).
	UserLevel  bool
	UserColumn int
	// Metrics receives engine-level observability: block outcome counters
	// (engine.blocks_ok / blocks_substituted / blocks_timed_out) and the
	// parallelism-occupancy gauge (engine.blocks_inflight). Nil disables.
	// Only event counts flow here — never block data or raw durations.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records one span per engine stage (partition,
	// blocks, aggregation, noising) of this run's lifecycle.
	Trace *telemetry.Trace
}

func (o Options) withDefaults(n int) Options {
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize(n)
	}
	if o.Gamma == 0 {
		o.Gamma = 1
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.NewChamber == nil {
		o.NewChamber = func(prog analytics.Program, pol sandbox.Policy) sandbox.Chamber {
			return &sandbox.InProcess{Program: prog, Policy: pol}
		}
	}
	return o
}

// Result is the differentially private output of one run, plus
// data-independent (or itself differentially private) diagnostics.
type Result struct {
	// Output is the ε-differentially private result vector.
	Output mathutil.Vec
	// Mode records which range-estimation mode ran.
	Mode RangeMode
	// EffectiveRanges are the per-dimension output ranges actually used for
	// clamping and noise. For ModeLoose and ModeHelper these were estimated
	// under differential privacy, so exposing them is safe.
	EffectiveRanges []dp.Range
	// EpsilonSpent is the total privacy budget the run consumed.
	EpsilonSpent float64
	// NumBlocks, BlockSize and Gamma describe the partition geometry.
	NumBlocks int
	BlockSize int
	Gamma     int
	// FailedBlocks counts block executions that were killed, crashed, or
	// returned a malformed output and were replaced by the
	// data-independent substitute.
	FailedBlocks int
	// CacheHit marks a result re-served from the noisy-answer cache: the
	// identical already-released output at zero additional ε
	// (post-processing). EpsilonSpent then reports what the original
	// release cost; nothing was charged for this repeat. The engine never
	// sets this — the caching layers above (gupt.Platform, compman.Server)
	// do.
	CacheHit bool
}

// SubstitutionRate reports the fraction of blocks that contributed the
// substitute value instead of a real output — the run's degradation level.
// 0 means every block computed; 1 means the output is pure noise around
// the range midpoints.
func (r *Result) SubstitutionRate() float64 {
	if r.NumBlocks == 0 {
		return 0
	}
	return float64(r.FailedBlocks) / float64(r.NumBlocks)
}

// ErrTooManyFailures reports that a run exceeded Options.MaxFailFrac: so
// many blocks were substituted that the result would be mostly noise around
// the data-independent substitute. The privacy charge for the run stands.
var ErrTooManyFailures = errors.New("core: too many failed blocks")

// Run executes program over rows under the sample-and-aggregate framework
// and returns an Options.Epsilon-differentially private result. It does not
// touch any budget ledger — callers (the computation manager) charge the
// dataset's accountant before invoking Run.
func Run(ctx context.Context, program analytics.Program, rows []mathutil.Vec, spec RangeSpec, opts Options) (*Result, error) {
	if program == nil {
		return nil, errors.New("core: nil program")
	}
	n := len(rows)
	if n == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if err := dpCheckEpsilon(opts.Epsilon); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(n)

	inputDims := len(rows[0])
	outputDims := program.OutputDims()
	if outputDims <= 0 {
		return nil, fmt.Errorf("core: program %q declares %d output dims", program.Name(), outputDims)
	}
	if err := spec.validate(inputDims, outputDims); err != nil {
		return nil, err
	}

	rng := mathutil.NewRNG(opts.Seed)
	partRNG := rng.Split()
	rangeRNG := rng.Split()
	noiseRNG := rng.Split()

	// Span pattern: End keeps only its first call, so the deferred error
	// status fires only when an early return skips the explicit ok.
	partSpan := opts.Trace.StartSpan(telemetry.StagePartition)
	defer partSpan.End(telemetry.StatusError)

	var part *Partition
	var err error
	if opts.UserLevel {
		groups, gerr := GroupRowsByColumn(rows, opts.UserColumn)
		if gerr != nil {
			return nil, gerr
		}
		part, err = MakeGroupedPartition(partRNG, n, groups, opts.BlockSize, opts.Gamma)
	} else {
		part, err = MakePartition(partRNG, n, opts.BlockSize, opts.Gamma)
	}
	if err != nil {
		return nil, err
	}

	// Theorem 1 budget split.
	var split dp.BudgetSplit
	switch spec.Mode {
	case ModeTight:
		split, err = dp.SplitTight(opts.Epsilon, outputDims)
	case ModeLoose:
		split, err = dp.SplitLoose(opts.Epsilon, outputDims)
	case ModeHelper:
		split, err = dp.SplitHelper(opts.Epsilon, inputDims, outputDims)
	}
	if err != nil {
		return nil, err
	}

	// Resolve the ranges known before block execution. For ModeLoose the
	// effective range is estimated later from block outputs; until then the
	// analyst's loose range bounds the substitute value.
	var preRanges []dp.Range
	switch spec.Mode {
	case ModeTight, ModeLoose:
		preRanges = append([]dp.Range(nil), spec.Output...)
	case ModeHelper:
		input := spec.Input
		if input == nil {
			return nil, fmt.Errorf("%w: %s requires input ranges (from the spec or the dataset)", ErrRangeSpec, spec.Mode)
		}
		preRanges, err = estimateHelperRanges(rangeRNG, rows, spec, input, split.RangeEps, outputDims)
		if err != nil {
			return nil, err
		}
	}

	// The substitute released for killed or misbehaving blocks: the
	// midpoint of each known range — constant and data-independent.
	substitute := make(mathutil.Vec, outputDims)
	for d, r := range preRanges {
		substitute[d] = r.Mid()
	}
	partSpan.End(telemetry.StatusOK)

	blockSpan := opts.Trace.StartSpan(telemetry.StageBlocks)
	outputs, failed, err := runBlocks(ctx, program, rows, part, substitute, opts)
	if err != nil {
		status := telemetry.StatusError
		if errors.Is(err, context.DeadlineExceeded) {
			status = telemetry.StatusTimeout
		}
		blockSpan.End(status)
		return nil, err
	}
	if opts.MaxFailFrac > 0 && float64(failed) > opts.MaxFailFrac*float64(part.NumBlocks()) {
		blockSpan.End(telemetry.StatusError)
		return nil, fmt.Errorf("%w: %d of %d blocks substituted (limit %.0f%%)",
			ErrTooManyFailures, failed, part.NumBlocks(), opts.MaxFailFrac*100)
	}
	blockSpan.End(telemetry.StatusOK)

	aggSpan := opts.Trace.StartSpan(telemetry.StageAggregation)
	defer aggSpan.End(telemetry.StatusError)

	// ModeLoose: tighten the output range privately from the block outputs.
	effective := preRanges
	if spec.Mode == ModeLoose {
		effective, err = estimateLooseRanges(rangeRNG, outputs, spec, split.RangeEps, part.Gamma)
		if err != nil {
			return nil, err
		}
	}

	// Clamp and average (Algorithm 1 lines 5–6), one contiguous column per
	// output dimension. SumClamped accumulates in block order, so the
	// result is bit-identical to the per-element scalar loop it replaced.
	avgs := make(mathutil.Vec, outputDims)
	for d := 0; d < outputDims; d++ {
		r := effective[d]
		avgs[d] = mathutil.SumClamped(outputs.col(d), r.Lo, r.Hi) / float64(outputs.n)
	}
	aggSpan.End(telemetry.StatusOK)

	noiseSpan := opts.Trace.StartSpan(telemetry.StageNoising)
	defer noiseSpan.End(telemetry.StatusError)

	// Per-dimension Laplace noise (Algorithm 1 lines 7–8, with the §4.2
	// resampling-aware sensitivity), drawn as one batch under a single
	// generator lock. The draw stream matches per-dimension scalar calls
	// exactly, so seeds reproduce historical outputs.
	sens := make([]float64, outputDims)
	for d := 0; d < outputDims; d++ {
		sens[d] = part.Sensitivity(effective[d].Width())
	}
	final, err := dp.LaplaceVec(noiseRNG, avgs, sens, split.AggregateEps)
	if err != nil {
		return nil, err
	}
	noiseSpan.End(telemetry.StatusOK)

	return &Result{
		Output:          final,
		Mode:            spec.Mode,
		EffectiveRanges: effective,
		EpsilonSpent:    opts.Epsilon,
		NumBlocks:       part.NumBlocks(),
		BlockSize:       part.BlockSize,
		Gamma:           part.Gamma,
		FailedBlocks:    failed,
	}, nil
}

// runBlocks executes the program on every block through isolation chambers,
// bounded by opts.Parallelism. A block that fails in any way (killed,
// crashed, hung past its deadline, program error, wrong output arity,
// non-finite values) contributes the substitute vector, so the release
// pipeline sees a complete, well-formed matrix of block outputs. Only
// cancellation of the caller's context aborts the run.
func runBlocks(ctx context.Context, program analytics.Program, rows []mathutil.Vec, part *Partition, substitute mathutil.Vec, opts Options) (*blockMatrix, int, error) {
	// engine substitutes itself, to count failures
	pol := sandbox.Policy{Quantum: opts.Quantum, Metrics: opts.Metrics}
	chamber := opts.NewChamber(program, pol)

	// Chambers that take a block index (the distributed pool) get it for
	// consistent block→worker assignment; the index never affects results —
	// block outputs are keyed by index in the output matrix regardless.
	blockChamber, _ := chamber.(sandbox.BlockChamber)
	// Chambers declaring they never mutate rows get zero-copy views of the
	// partition instead of per-block clones.
	zeroCopy := false
	if ro, ok := chamber.(sandbox.ReadOnlyChamber); ok {
		zeroCopy = ro.ReadOnlyBlocks()
	}

	// Block-outcome counters and the occupancy gauge. All nil-safe: with
	// opts.Metrics nil each event costs one branch.
	blocksOK := opts.Metrics.Counter("engine.blocks_ok")
	blocksSubstituted := opts.Metrics.Counter("engine.blocks_substituted")
	blocksTimedOut := opts.Metrics.Counter("engine.blocks_timed_out")
	inflight := opts.Metrics.Gauge("engine.blocks_inflight")

	outputs := newBlockMatrix(part.NumBlocks(), len(substitute))
	written := make([]bool, part.NumBlocks())
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	var ctxErr error

	for i := range part.Blocks {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Per-block deadline: a wedged chamber (hung worker socket,
			// stuck subprocess) fails just this block, never the query.
			bctx := ctx
			cancel := func() {}
			if opts.BlockTimeout > 0 {
				bctx, cancel = context.WithTimeout(ctx, opts.BlockTimeout)
			}
			var block []mathutil.Vec
			if zeroCopy {
				block = part.View(rows, i)
			} else {
				block = part.Materialize(rows, i)
			}
			inflight.Inc()
			var out mathutil.Vec
			var err error
			if blockChamber != nil {
				out, err = blockChamber.ExecuteBlock(bctx, i, block)
			} else {
				out, err = chamber.Execute(bctx, block)
			}
			inflight.Dec()
			if err != nil && bctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
				// The per-block deadline expired while the parent context was
				// still live: this block timed out (and will be substituted).
				blocksTimedOut.Inc()
			}
			cancel()
			if err != nil && ctx.Err() != nil {
				// The caller's context ended; the whole run aborts. A
				// block-deadline expiry alone never takes this path — the
				// parent context is still live there.
				mu.Lock()
				ctxErr = ctx.Err()
				mu.Unlock()
				return
			}
			if err != nil || !wellFormedOutput(out, len(substitute)) {
				mu.Lock()
				failed++
				mu.Unlock()
				blocksSubstituted.Inc()
				out = substitute
			} else {
				blocksOK.Inc()
			}
			outputs.setRow(i, out)
			written[i] = true
		}(i)
	}
	wg.Wait()
	if ctxErr != nil {
		return nil, 0, ctxErr
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// Blocks skipped by an early break (can only happen on cancellation,
	// already returned above) would be unwritten; guard anyway.
	for i, ok := range written {
		if !ok {
			outputs.setRow(i, substitute)
			failed++
			blocksSubstituted.Inc()
		}
	}
	return outputs, failed, nil
}

// wellFormedOutput accepts only outputs the aggregator can safely consume:
// correct arity, every value finite. NaN would poison the block average
// straight through clamping (NaN comparisons are all false), and ±Inf is
// indistinguishable from a smuggling attempt, so both are substituted.
func wellFormedOutput(out mathutil.Vec, dims int) bool {
	if len(out) != dims {
		return false
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func dpCheckEpsilon(eps float64) error {
	if !(eps > 0) {
		return fmt.Errorf("%w: got %v", dp.ErrInvalidEpsilon, eps)
	}
	return nil
}
