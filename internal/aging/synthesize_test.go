package aging

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

func TestSynthesizeAgedPreservesMarginals(t *testing.T) {
	rng := mathutil.NewRNG(1)
	rows := make([]mathutil.Vec, 5000)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	synth, err := SynthesizeAged(rng, rows, ranges, 30, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(synth) != 2000 {
		t.Fatalf("count = %d", len(synth))
	}
	realCol := make([]float64, len(rows))
	for i, r := range rows {
		realCol[i] = r[0]
	}
	synthCol := make([]float64, len(synth))
	for i, r := range synth {
		synthCol[i] = r[0]
		if !ranges[0].Contains(r[0]) {
			t.Fatalf("synthetic value %v outside range", r[0])
		}
	}
	// Tolerance derivation: sampling error of a 2000-draw mean at σ=10 is
	// σ/√2000 ≈ 0.22; the dominant error is the DP noise on the marginal
	// histogram the synthesizer draws from (ε=2 over 30 bins of width 5),
	// which shifts the mean by up to a few bin widths' worth of mass — 3
	// covers that while a broken marginal (e.g. uniform) would miss by ≈10.
	if math.Abs(mathutil.Mean(synthCol)-mathutil.Mean(realCol)) > 3 {
		t.Errorf("synthetic mean %v vs real %v", mathutil.Mean(synthCol), mathutil.Mean(realCol))
	}
	// StdDev additionally pays within-bin quantization (width 5 ⇒ up to
	// ≈5/√12 ≈ 1.4 of spread added); 4 covers noise + quantization, while
	// a collapsed or uniform marginal lands ≈6–30 away.
	if math.Abs(mathutil.StdDev(synthCol)-mathutil.StdDev(realCol)) > 4 {
		t.Errorf("synthetic std %v vs real %v", mathutil.StdDev(synthCol), mathutil.StdDev(realCol))
	}
}

// The synthetic sample is good enough to drive the optimizers — the whole
// point of §3.3's suggestion.
func TestSynthesizeAgedDrivesEstimateEpsilon(t *testing.T) {
	rng := mathutil.NewRNG(2)
	rows := make([]mathutil.Vec, 4000)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	synth, err := SynthesizeAged(rng, rows, ranges, 30, 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateEpsilon(analytics.Mean{Col: 0}, synth, len(rows), 64, ranges,
		AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if est.Epsilon <= 0 || est.Epsilon > 100 {
		t.Errorf("synthetic-sample epsilon estimate = %v", est.Epsilon)
	}
}

func TestSynthesizeAgedMultiColumn(t *testing.T) {
	rng := mathutil.NewRNG(3)
	rows := make([]mathutil.Vec, 2000)
	for i := range rows {
		rows[i] = mathutil.Vec{rng.Float64() * 10, 100 + rng.Float64()*50}
	}
	ranges := []dp.Range{{Lo: 0, Hi: 10}, {Lo: 100, Hi: 150}}
	synth, err := SynthesizeAged(rng, rows, ranges, 20, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range synth {
		if len(r) != 2 || !ranges[0].Contains(r[0]) || !ranges[1].Contains(r[1]) {
			t.Fatalf("bad synthetic row %v", r)
		}
	}
}

func TestSynthesizeAgedDegenerateColumn(t *testing.T) {
	rng := mathutil.NewRNG(4)
	rows := []mathutil.Vec{{5}, {5}, {5}}
	synth, err := SynthesizeAged(rng, rows, []dp.Range{{Lo: 5, Hi: 5}}, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range synth {
		if r[0] != 5 {
			t.Fatalf("degenerate column synthesized %v", r[0])
		}
	}
}

func TestSynthesizeAgedValidation(t *testing.T) {
	rng := mathutil.NewRNG(5)
	rows := []mathutil.Vec{{1}}
	ranges := []dp.Range{{Lo: 0, Hi: 1}}
	if _, err := SynthesizeAged(rng, nil, ranges, 10, 10, 1); !errors.Is(err, ErrNoAgedData) {
		t.Errorf("empty rows err = %v", err)
	}
	if _, err := SynthesizeAged(rng, rows, nil, 10, 10, 1); err == nil {
		t.Error("missing ranges accepted")
	}
	if _, err := SynthesizeAged(rng, rows, ranges, 0, 10, 1); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := SynthesizeAged(rng, rows, ranges, 10, 0, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := SynthesizeAged(rng, rows, ranges, 10, 10, 0); err == nil {
		t.Error("zero eps accepted")
	}
	if _, err := SynthesizeAged(rng, rows, []dp.Range{{Lo: 1, Hi: 0}}, 10, 10, 1); err == nil {
		t.Error("inverted range accepted")
	}
}
