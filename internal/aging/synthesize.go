package aging

import (
	"fmt"

	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// SynthesizeAged implements the opportunity the paper sketches at the end
// of §3.3: when no naturally aged data exists, spend a small slice of the
// privacy budget once to build a differentially private sketch of the data
// distribution, and use *synthetic* draws from that sketch as the training
// sample for the block-size and ε-estimation optimizers.
//
// The sketch is a per-column DP histogram (the budget splits evenly across
// columns, then across bins via a single Laplace release each — one record
// changes one bin per column, so each column's histogram costs its full
// column share under parallel composition). Synthetic rows sample each
// column independently; correlations are not preserved, which is fine for
// the optimizers (they only need marginal spreads), and is documented here
// so nobody mistakes the output for real data.
//
// The returned rows are safe to treat as non-private: they are a
// post-processing of an eps-DP release.
func SynthesizeAged(rng *mathutil.RNG, rows []mathutil.Vec, ranges []dp.Range, bins, count int, eps float64) ([]mathutil.Vec, error) {
	if len(rows) == 0 {
		return nil, ErrNoAgedData
	}
	dims := len(rows[0])
	if len(ranges) != dims {
		return nil, fmt.Errorf("aging: %d ranges for %d columns", len(ranges), dims)
	}
	if bins <= 0 || count <= 0 {
		return nil, fmt.Errorf("aging: bins=%d count=%d must be positive", bins, count)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("%w: got %v", dp.ErrInvalidEpsilon, eps)
	}
	epsCol := eps / float64(dims)

	// Per-column DP histograms.
	hists := make([][]float64, dims)
	mids := make([][]float64, dims)
	widths := make([]float64, dims)
	for d := 0; d < dims; d++ {
		r := ranges[d]
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("aging: column %d: %w", d, err)
		}
		width := r.Width() / float64(bins)
		if width <= 0 {
			// Degenerate column: all mass at one point.
			hists[d] = []float64{1}
			mids[d] = []float64{r.Lo}
			widths[d] = 0
			continue
		}
		counts := make([]float64, bins)
		for _, row := range rows {
			idx := int((r.Clamp(row[d]) - r.Lo) / width)
			if idx >= bins {
				idx = bins - 1
			}
			counts[idx]++
		}
		// One record moves one unit of one bin: sensitivity 1 per bin
		// under parallel composition across bins.
		for b := range counts {
			noisy, err := dp.Laplace(rng, counts[b], 1, epsCol)
			if err != nil {
				return nil, err
			}
			if noisy < 0 {
				noisy = 0
			}
			counts[b] = noisy
		}
		m := make([]float64, bins)
		for b := range m {
			m[b] = r.Lo + (float64(b)+0.5)*width
		}
		hists[d] = counts
		mids[d] = m
		widths[d] = width
	}

	// Sample synthetic rows from the product of the noisy marginals.
	out := make([]mathutil.Vec, count)
	for i := range out {
		row := make(mathutil.Vec, dims)
		for d := 0; d < dims; d++ {
			b := rng.Categorical(hists[d])
			jitter := (rng.Float64() - 0.5) * widths[d]
			row[d] = ranges[d].Clamp(mids[d][b] + jitter)
		}
		out[i] = row
	}
	return out, nil
}
