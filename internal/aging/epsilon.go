package aging

import (
	"errors"
	"fmt"
	"math"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// AccuracyGoal expresses the analyst's utility target in their own terms
// (paper §5.1): "the output should be within a factor Rho of the true
// value, with probability Confidence". Rho = 0.9 means a relative error of
// at most 10%.
type AccuracyGoal struct {
	Rho        float64 // target accuracy factor in (0, 1)
	Confidence float64 // 1 − δ, in (0, 1)
}

// Validate checks the goal's parameters.
func (g AccuracyGoal) Validate() error {
	if !(g.Rho > 0 && g.Rho < 1) {
		return fmt.Errorf("aging: accuracy factor Rho must be in (0,1), got %v", g.Rho)
	}
	if !(g.Confidence > 0 && g.Confidence < 1) {
		return fmt.Errorf("aging: Confidence must be in (0,1), got %v", g.Confidence)
	}
	return nil
}

// Delta returns δ = 1 − Confidence.
func (g AccuracyGoal) Delta() float64 { return 1 - g.Confidence }

// EpsilonEstimate is the outcome of translating an accuracy goal into a
// privacy budget.
type EpsilonEstimate struct {
	// Epsilon is the total budget the query should be charged.
	Epsilon float64
	// PermittedStd is the output standard deviation σ implied by the goal
	// via Chebyshev's inequality.
	PermittedStd float64
	// EstimationVar is the C term of Eq. 3 measured on the aged sample: the
	// variance of the block-mean estimator.
	EstimationVar float64
	// BlockSize is the β the estimate was computed for.
	BlockSize int
}

// EstimateEpsilon solves the paper's Eq. 3 for ε: find the smallest privacy
// budget such that estimation variance plus Laplace variance stays within
// the σ² implied by the accuracy goal.
//
// Given the aged sample:
//
//	σ  = √δ · |1−ρ| · |f(T^np)|            (per output dimension)
//	C  = Var_blocks(f) / ℓ                 (estimation variance of the mean)
//	D  = 2·s²/(ε_d²·ℓ²)                    (Laplace variance at ε_d per dim)
//
// and C + D = σ² gives ε_d = √2·s / (ℓ·√(σ²−C)). The returned total is
// p·max_d ε_d so the uniform Theorem-1 split meets the goal on every
// dimension. ErrInfeasibleAccuracy is returned when C ≥ σ² on some
// dimension — no amount of budget can reach the goal at this block size.
func EstimateEpsilon(program analytics.Program, aged []mathutil.Vec, n, beta int, ranges []dp.Range, goal AccuracyGoal) (EpsilonEstimate, error) {
	if len(aged) == 0 {
		return EpsilonEstimate{}, ErrNoAgedData
	}
	if err := goal.Validate(); err != nil {
		return EpsilonEstimate{}, err
	}
	if program == nil {
		return EpsilonEstimate{}, errors.New("aging: nil program")
	}
	p := program.OutputDims()
	if len(ranges) != p {
		return EpsilonEstimate{}, fmt.Errorf("aging: %d ranges for %d output dims", len(ranges), p)
	}
	if n <= 0 || beta < 1 || beta > n {
		return EpsilonEstimate{}, fmt.Errorf("aging: invalid n=%d beta=%d", n, beta)
	}

	full, err := program.Run(cloneRows(aged))
	if err != nil {
		return EpsilonEstimate{}, fmt.Errorf("aging: program failed on aged data: %w", err)
	}
	outs, err := BlockOutputs(program, aged, beta)
	if err != nil {
		return EpsilonEstimate{}, err
	}

	ell := float64(n) / float64(beta) // block count of the real run
	delta := goal.Delta()

	var epsMax, sigmaMin, cMax float64
	sigmaMin = math.Inf(1)
	col := make([]float64, len(outs))
	for d := 0; d < p; d++ {
		sigma := math.Sqrt(delta) * math.Abs(1-goal.Rho) * math.Abs(full[d])
		if sigma <= 0 {
			return EpsilonEstimate{}, fmt.Errorf("%w: dimension %d has zero reference value", ErrInfeasibleAccuracy, d)
		}
		for i, o := range outs {
			col[i] = o[d]
		}
		c := mathutil.Variance(col) / ell
		if c >= sigma*sigma {
			return EpsilonEstimate{}, fmt.Errorf("%w: estimation variance %v >= permitted %v on dim %d",
				ErrInfeasibleAccuracy, c, sigma*sigma, d)
		}
		epsD := math.Sqrt2 * ranges[d].Width() / (ell * math.Sqrt(sigma*sigma-c))
		if epsD > epsMax {
			epsMax = epsD
		}
		if sigma < sigmaMin {
			sigmaMin = sigma
		}
		if c > cMax {
			cMax = c
		}
	}

	return EpsilonEstimate{
		Epsilon:       epsMax * float64(p),
		PermittedStd:  sigmaMin,
		EstimationVar: cMax,
		BlockSize:     beta,
	}, nil
}
