package aging

import (
	"errors"
	"math"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// agedSample builds nnp one-column rows from a log-normal (skewed, so block
// medians vary with block size).
func agedSample(seed int64, n int) []mathutil.Vec {
	rng := mathutil.NewRNG(seed)
	rows := make([]mathutil.Vec, n)
	for i := range rows {
		rows[i] = mathutil.Vec{mathutil.Clamp(rng.LogNormal(3, 0.6), 0, 150)}
	}
	return rows
}

func TestBlockOutputs(t *testing.T) {
	aged := agedSample(1, 100)
	outs, err := BlockOutputs(analytics.Mean{Col: 0}, aged, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 10 {
		t.Fatalf("got %d blocks, want 10", len(outs))
	}
	// The mean of the block means equals the grand mean when blocks tile
	// the data evenly.
	var m float64
	for _, o := range outs {
		m += o[0]
	}
	m /= 10
	col := make([]float64, 100)
	for i, r := range aged {
		col[i] = r[0]
	}
	if math.Abs(m-mathutil.Mean(col)) > 1e-9 {
		t.Errorf("block-mean average %v != grand mean %v", m, mathutil.Mean(col))
	}
	if _, err := BlockOutputs(analytics.Mean{Col: 0}, aged, 0); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := BlockOutputs(analytics.Mean{Col: 0}, aged, 101); err == nil {
		t.Error("beta>nnp accepted")
	}
}

// For the mean statistic, the estimation error is ~0 at any block size, so
// the optimizer should drive the block size small, where noise is minimal
// (the paper's Example 3: optimal block size for the average is 1).
func TestOptimizeBlockSizeMeanPrefersSmallBlocks(t *testing.T) {
	aged := agedSample(2, 2000)
	choice, err := OptimizeBlockSize(analytics.Mean{Col: 0}, aged, 10000, 2, []dp.Range{{Lo: 0, Hi: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if choice.BlockSize > 5 {
		t.Errorf("mean query block size = %d, want near 1 (Example 3)", choice.BlockSize)
	}
	if choice.TotalErr() <= 0 {
		t.Errorf("TotalErr = %v", choice.TotalErr())
	}
}

// For the median on skewed data, tiny blocks carry real estimation bias, so
// the optimum should be interior: strictly larger than 1.
func TestOptimizeBlockSizeMedianPrefersLargerBlocks(t *testing.T) {
	aged := agedSample(3, 3000)
	choice, err := OptimizeBlockSize(analytics.Median{Col: 0}, aged, 3279, 2, []dp.Range{{Lo: 0, Hi: 150}})
	if err != nil {
		t.Fatal(err)
	}
	if choice.BlockSize <= 1 {
		t.Errorf("median query block size = %d, want > 1", choice.BlockSize)
	}
}

// The optimizer's choice must beat the paper's default n^0.6 on its own
// objective — otherwise it isn't optimizing.
func TestOptimizeBlockSizeBeatsDefault(t *testing.T) {
	aged := agedSample(4, 3000)
	n, eps := 10000, 2.0
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	prog := analytics.Mean{Col: 0}
	choice, err := OptimizeBlockSize(prog, aged, n, eps, ranges)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := prog.Run(aged)
	ev := newEvaluator(prog, aged, n, eps, ranges, full)
	def, err := ev.at(int(math.Round(math.Pow(float64(n), 0.6))))
	if err != nil {
		t.Fatal(err)
	}
	if choice.TotalErr() > def.TotalErr()+1e-12 {
		t.Errorf("optimized err %v worse than default err %v", choice.TotalErr(), def.TotalErr())
	}
}

func TestOptimizeBlockSizeValidation(t *testing.T) {
	aged := agedSample(5, 100)
	ranges := []dp.Range{{Lo: 0, Hi: 1}}
	if _, err := OptimizeBlockSize(analytics.Mean{Col: 0}, nil, 100, 1, ranges); !errors.Is(err, ErrNoAgedData) {
		t.Errorf("no aged data, err = %v", err)
	}
	if _, err := OptimizeBlockSize(nil, aged, 100, 1, ranges); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := OptimizeBlockSize(analytics.Mean{Col: 0}, aged, 0, 1, ranges); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := OptimizeBlockSize(analytics.Mean{Col: 0}, aged, 100, 0, ranges); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := OptimizeBlockSize(analytics.Mean{Col: 0}, aged, 100, 1, nil); err == nil {
		t.Error("missing ranges accepted")
	}
}

func TestAccuracyGoalValidate(t *testing.T) {
	bad := []AccuracyGoal{
		{Rho: 0, Confidence: 0.9},
		{Rho: 1, Confidence: 0.9},
		{Rho: 0.9, Confidence: 0},
		{Rho: 0.9, Confidence: 1},
		{Rho: -0.5, Confidence: 0.9},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("goal %+v accepted", g)
		}
	}
	if err := (AccuracyGoal{Rho: 0.9, Confidence: 0.9}).Validate(); err != nil {
		t.Errorf("valid goal rejected: %v", err)
	}
	if d := (AccuracyGoal{Rho: 0.9, Confidence: 0.9}).Delta(); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("Delta = %v", d)
	}
}

func TestEstimateEpsilonBasic(t *testing.T) {
	aged := agedSample(6, 3000)
	est, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 30000, 60,
		[]dp.Range{{Lo: 0, Hi: 150}}, AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if est.Epsilon <= 0 {
		t.Fatalf("Epsilon = %v", est.Epsilon)
	}
	if est.BlockSize != 60 {
		t.Errorf("BlockSize = %d", est.BlockSize)
	}
	if est.PermittedStd <= 0 || est.EstimationVar < 0 {
		t.Errorf("estimate diagnostics wrong: %+v", est)
	}
}

// A stricter accuracy goal must never require less budget.
func TestEstimateEpsilonMonotoneInAccuracy(t *testing.T) {
	aged := agedSample(7, 3000)
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	lax, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 30000, 60, ranges, AccuracyGoal{Rho: 0.8, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 30000, 60, ranges, AccuracyGoal{Rho: 0.95, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Epsilon <= lax.Epsilon {
		t.Errorf("strict goal eps %v <= lax goal eps %v", strict.Epsilon, lax.Epsilon)
	}
}

// The estimated epsilon must actually deliver: running SAF's noise model at
// that budget keeps the standard deviation within sigma.
func TestEstimateEpsilonSufficient(t *testing.T) {
	aged := agedSample(8, 3000)
	n, beta := 30000, 60
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	goal := AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	est, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, n, beta, ranges, goal)
	if err != nil {
		t.Fatal(err)
	}
	ell := float64(n) / float64(beta)
	laplaceVar := 2 * math.Pow(ranges[0].Width()/(est.Epsilon*ell), 2)
	total := est.EstimationVar + laplaceVar
	if total > est.PermittedStd*est.PermittedStd*(1+1e-9) {
		t.Errorf("variance budget violated: C+D = %v > sigma^2 = %v", total, est.PermittedStd*est.PermittedStd)
	}
}

func TestEstimateEpsilonInfeasible(t *testing.T) {
	// Tiny blocks of a high-variance statistic with an absurdly tight goal:
	// estimation variance alone exceeds what the goal allows.
	rng := mathutil.NewRNG(9)
	aged := make([]mathutil.Vec, 400)
	for i := range aged {
		aged[i] = mathutil.Vec{rng.Float64() * 150}
	}
	_, err := EstimateEpsilon(analytics.Median{Col: 0}, aged, 400, 2,
		[]dp.Range{{Lo: 0, Hi: 150}}, AccuracyGoal{Rho: 0.9999, Confidence: 0.9999})
	if !errors.Is(err, ErrInfeasibleAccuracy) {
		t.Errorf("err = %v, want ErrInfeasibleAccuracy", err)
	}
}

func TestEstimateEpsilonValidation(t *testing.T) {
	aged := agedSample(10, 100)
	ranges := []dp.Range{{Lo: 0, Hi: 150}}
	goal := AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	if _, err := EstimateEpsilon(analytics.Mean{Col: 0}, nil, 100, 10, ranges, goal); !errors.Is(err, ErrNoAgedData) {
		t.Errorf("err = %v", err)
	}
	if _, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 100, 10, ranges, AccuracyGoal{}); err == nil {
		t.Error("invalid goal accepted")
	}
	if _, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 0, 10, ranges, goal); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 100, 0, ranges, goal); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := EstimateEpsilon(analytics.Mean{Col: 0}, aged, 100, 10, nil, goal); err == nil {
		t.Error("missing ranges accepted")
	}
	if _, err := EstimateEpsilon(nil, aged, 100, 10, ranges, goal); err == nil {
		t.Error("nil program accepted")
	}
}
