// Package aging implements GUPT's aging-of-sensitivity model (paper §3.3)
// and the two optimizers built on it:
//
//   - OptimizeBlockSize (§4.3): pick the block size β that minimizes the
//     empirical error — estimation error plus Laplace noise — measured on
//     an aged, no-longer-private sample of the data distribution.
//   - EstimateEpsilon (§5.1): translate an analyst's accuracy goal ("within
//     a factor ρ of the true value, with probability 1−δ") into the
//     smallest privacy budget ε that achieves it, again calibrated on the
//     aged sample.
//
// Both computations touch only aged data, so they consume no privacy
// budget (the paper's simplifying model: the aged fraction has fully aged
// out; see §3.3 for the weakly-private variant).
package aging

import (
	"errors"
	"fmt"
	"math"

	"gupt/internal/analytics"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
)

// ErrNoAgedData is returned when an optimizer is invoked without an aged
// sample.
var ErrNoAgedData = errors.New("aging: no aged data available")

// ErrInfeasibleAccuracy is returned by EstimateEpsilon when the requested
// accuracy cannot be met at any ε because the estimation error alone
// already exceeds the allowed variance.
var ErrInfeasibleAccuracy = errors.New("aging: accuracy goal infeasible at this block size")

// BlockSizeChoice reports the optimizer's decision and the error model
// behind it.
type BlockSizeChoice struct {
	// BlockSize is the chosen β.
	BlockSize int
	// Alpha is the corresponding exponent (ℓ = n^Alpha blocks).
	Alpha float64
	// EstimationErr is the A term of Eq. 2 at the chosen β: the empirical
	// |block-mean − full| gap on the aged sample, averaged over output
	// dimensions.
	EstimationErr float64
	// NoiseErr is the B term of Eq. 2 at the chosen β: the expected
	// magnitude of the Laplace perturbation, averaged over dimensions.
	NoiseErr float64
}

// TotalErr is the Eq. 2 objective at the chosen block size.
func (c BlockSizeChoice) TotalErr() float64 { return c.EstimationErr + c.NoiseErr }

// OptimizeBlockSize searches for the block size minimizing Eq. 2:
//
//	| (1/ℓnp)·Σ f(T_i^np) − f(T^np) |  +  √2·s/(ε·n^α)
//
// evaluated on the aged rows, where n is the size of the private dataset
// the query will actually run on, eps is the query's aggregation budget and
// ranges are the per-dimension output ranges (s = range width). The search
// walks a grid of α values in [1 − log(n_np)/log n, 1] and then hill-climbs
// on β (the paper suggests exactly such a local search).
func OptimizeBlockSize(program analytics.Program, aged []mathutil.Vec, n int, eps float64, ranges []dp.Range) (BlockSizeChoice, error) {
	if len(aged) == 0 {
		return BlockSizeChoice{}, ErrNoAgedData
	}
	if program == nil {
		return BlockSizeChoice{}, errors.New("aging: nil program")
	}
	if n <= 0 {
		return BlockSizeChoice{}, fmt.Errorf("aging: private dataset size %d", n)
	}
	if !(eps > 0) {
		return BlockSizeChoice{}, fmt.Errorf("%w: got %v", dp.ErrInvalidEpsilon, eps)
	}
	p := program.OutputDims()
	if len(ranges) != p {
		return BlockSizeChoice{}, fmt.Errorf("aging: %d ranges for %d output dims", len(ranges), p)
	}

	nnp := len(aged)
	full, err := program.Run(cloneRows(aged))
	if err != nil {
		return BlockSizeChoice{}, fmt.Errorf("aging: program failed on aged data: %w", err)
	}
	if len(full) != p {
		return BlockSizeChoice{}, fmt.Errorf("aging: program returned %d dims, declared %d", len(full), p)
	}

	logN := math.Log(float64(n))
	alphaMin := math.Max(0, 1-math.Log(float64(nnp))/logN)

	eval := newEvaluator(program, aged, n, eps, ranges, full)

	// Coarse grid over α, then refine around the best candidate by
	// hill-climbing directly on β.
	const gridPoints = 16
	best := BlockSizeChoice{BlockSize: -1}
	bestErr := math.Inf(1)
	for g := 0; g <= gridPoints; g++ {
		alpha := alphaMin + (1-alphaMin)*float64(g)/gridPoints
		beta := betaForAlpha(n, alpha, nnp)
		choice, err := eval.at(beta)
		if err != nil {
			continue // a block size the program cannot handle; skip
		}
		if choice.TotalErr() < bestErr {
			best, bestErr = choice, choice.TotalErr()
		}
	}
	if best.BlockSize < 0 {
		return BlockSizeChoice{}, errors.New("aging: program failed on every candidate block size")
	}

	// Hill climb: multiplicative neighbors until no improvement.
	for step := 0; step < 24; step++ {
		improved := false
		for _, cand := range []int{best.BlockSize - 1, best.BlockSize + 1,
			int(float64(best.BlockSize) * 0.8), int(float64(best.BlockSize) * 1.25)} {
			if cand < 1 || cand > nnp || cand == best.BlockSize {
				continue
			}
			choice, err := eval.at(cand)
			if err != nil {
				continue
			}
			if choice.TotalErr() < bestErr {
				best, bestErr = choice, choice.TotalErr()
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// evaluator caches Eq. 2 evaluations per block size.
type evaluator struct {
	program analytics.Program
	aged    []mathutil.Vec
	n       int
	eps     float64
	ranges  []dp.Range
	full    mathutil.Vec
	cache   map[int]BlockSizeChoice
	fail    map[int]bool
}

func newEvaluator(program analytics.Program, aged []mathutil.Vec, n int, eps float64, ranges []dp.Range, full mathutil.Vec) *evaluator {
	return &evaluator{
		program: program, aged: aged, n: n, eps: eps, ranges: ranges, full: full,
		cache: make(map[int]BlockSizeChoice), fail: make(map[int]bool),
	}
}

func (e *evaluator) at(beta int) (BlockSizeChoice, error) {
	if c, ok := e.cache[beta]; ok {
		return c, nil
	}
	if e.fail[beta] {
		return BlockSizeChoice{}, errors.New("aging: cached failure")
	}
	outs, err := BlockOutputs(e.program, e.aged, beta)
	if err != nil {
		e.fail[beta] = true
		return BlockSizeChoice{}, err
	}
	p := len(e.full)
	alpha := math.Log(float64(e.n)/float64(beta)) / math.Log(float64(e.n))
	nAlpha := float64(e.n) / float64(beta) // = n^alpha, the real run's block count
	perDimEps := e.eps / float64(p)

	var estErr, noiseErr float64
	for d := 0; d < p; d++ {
		var mean float64
		for _, o := range outs {
			mean += o[d]
		}
		mean /= float64(len(outs))
		estErr += math.Abs(mean - e.full[d])
		noiseErr += math.Sqrt2 * e.ranges[d].Width() / (perDimEps * nAlpha)
	}
	choice := BlockSizeChoice{
		BlockSize:     beta,
		Alpha:         alpha,
		EstimationErr: estErr / float64(p),
		NoiseErr:      noiseErr / float64(p),
	}
	e.cache[beta] = choice
	return choice, nil
}

// BlockOutputs runs the program on consecutive blocks of size beta carved
// from the aged rows, returning one output vector per block. Exported for
// reuse by EstimateEpsilon and the experiment harness.
func BlockOutputs(program analytics.Program, aged []mathutil.Vec, beta int) ([]mathutil.Vec, error) {
	nnp := len(aged)
	if beta < 1 || beta > nnp {
		return nil, fmt.Errorf("aging: block size %d out of [1, %d]", beta, nnp)
	}
	numBlocks := nnp / beta
	outs := make([]mathutil.Vec, 0, numBlocks)
	for b := 0; b < numBlocks; b++ {
		block := cloneRows(aged[b*beta : (b+1)*beta])
		o, err := program.Run(block)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	if len(outs) == 0 {
		return nil, errors.New("aging: no complete blocks")
	}
	return outs, nil
}

func betaForAlpha(n int, alpha float64, nnp int) int {
	beta := int(math.Round(math.Pow(float64(n), 1-alpha)))
	if beta < 1 {
		beta = 1
	}
	if beta > nnp {
		beta = nnp
	}
	return beta
}

func cloneRows(rows []mathutil.Vec) []mathutil.Vec {
	out := make([]mathutil.Vec, len(rows))
	for i, r := range rows {
		out[i] = r.Clone()
	}
	return out
}
