package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gupt/internal/dp"
)

func TestCreateAuthenticateRoundTrip(t *testing.T) {
	r := NewRegistry()
	key, err := r.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "gupt_") {
		t.Fatalf("key %q missing gupt_ prefix", key)
	}
	id, err := r.Authenticate(key)
	if err != nil || id != "alice" {
		t.Fatalf("Authenticate = (%q, %v), want (alice, nil)", id, err)
	}
	if _, err := r.Authenticate(key + "x"); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("wrong key authenticated: %v", err)
	}
	if _, err := r.Authenticate(""); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("empty key authenticated: %v", err)
	}
}

func TestDisabledTenantCannotAuthenticate(t *testing.T) {
	r := NewRegistry()
	key, _ := r.Create("mallory")
	if err := r.Add(Tenant{ID: "other", KeyHash: HashKey("k2")}); err != nil {
		t.Fatal(err)
	}
	// Disable by re-adding is not supported; flip through the persisted form.
	infos := r.List()
	if len(infos) != 2 {
		t.Fatalf("List len = %d", len(infos))
	}
	r2 := NewRegistry()
	if err := r2.Add(Tenant{ID: "mallory", KeyHash: HashKey(key), Disabled: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Authenticate(key); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("disabled tenant authenticated: %v", err)
	}
}

func TestAuthorizationGrants(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("a"); err != nil {
		t.Fatal(err)
	}
	if r.Authorized("a", "census") {
		t.Fatal("ungrated tenant authorized")
	}
	if err := r.Grant("a", "census"); err != nil {
		t.Fatal(err)
	}
	if !r.Authorized("a", "census") || r.Authorized("a", "other") {
		t.Fatal("grant scoping wrong")
	}
	if err := r.Grant("a", "*"); err != nil {
		t.Fatal(err)
	}
	if !r.Authorized("a", "anything") {
		t.Fatal("wildcard grant not honored")
	}
	if r.Authorized("ghost", "census") {
		t.Fatal("unknown tenant authorized")
	}
	if err := r.Grant("ghost", "census"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("granting unknown tenant: %v", err)
	}
}

func TestQuotaReserveReleaseIsolation(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"a", "b"} {
		if _, err := r.Create(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SetQuota("a", "ds", 1.0); err != nil {
		t.Fatal(err)
	}

	if err := r.Reserve("a", "ds", 0.8); err != nil {
		t.Fatal(err)
	}
	err := r.Reserve("a", "ds", 0.3)
	if !errors.Is(err, ErrQuotaExhausted) || !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("over-quota reserve = %v; want ErrQuotaExhausted wrapping dp.ErrBudgetExhausted", err)
	}
	// Tenant b has no quota on ds: unlimited but tracked.
	if err := r.Reserve("b", "ds", 5.0); err != nil {
		t.Fatalf("tenant b blocked by tenant a's quota: %v", err)
	}
	if got := r.Spent("b", "ds"); got != 5.0 {
		t.Fatalf("b spent = %v, want 5.0", got)
	}
	// Release backs out a failed downstream charge.
	r.Release("a", "ds", 0.8)
	if got := r.Spent("a", "ds"); got != 0 {
		t.Fatalf("a spent after release = %v, want 0", got)
	}
	if err := r.Reserve("a", "ds", 1.0); err != nil {
		t.Fatalf("reserve up to quota after release: %v", err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	r, err := Load(path) // missing file → empty registry
	if err != nil {
		t.Fatal(err)
	}
	key, err := r.Create("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Grant("alice", "census"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetQuota("alice", "census", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := r.SetLimits("alice", 10, 5, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAdmin("alice", true); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(); err != nil {
		t.Fatal(err)
	}

	r2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r2.Authenticate(key)
	if err != nil || id != "alice" {
		t.Fatalf("reloaded Authenticate = (%q, %v)", id, err)
	}
	in, ok := r2.Get("alice")
	if !ok || !in.Admin || in.Quotas["census"] != 2.5 || in.RateQPS != 10 || in.RateBurst != 5 || in.MaxInflight != 2 {
		t.Fatalf("reloaded info = %+v", in)
	}
	if !r2.Authorized("alice", "census") {
		t.Fatal("reloaded grant lost")
	}
	// The file must never contain the raw key.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), key) {
		t.Fatal("raw API key persisted to disk")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt tenants file loaded without error")
	}
}

func TestSeedFromRecoveryFailsClosedOnUnknownTenant(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.SeedFromRecovery("ds", map[string]float64{"a": 0.7, "": 1.2}); err != nil {
		t.Fatalf("seeding known tenant + legacy blank: %v", err)
	}
	if got := r.Spent("a", "ds"); got != 0.7 {
		t.Fatalf("seeded spent = %v, want 0.7", got)
	}
	err := r.SeedFromRecovery("ds", map[string]float64{"ghost": 0.1})
	if !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown recovered tenant must fail closed, got %v", err)
	}
}

func TestInvalidIDs(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"", "has space", "semi;colon", strings.Repeat("x", 129)} {
		if _, err := r.Create(id); err == nil {
			t.Fatalf("id %q accepted", id)
		}
	}
	if _, err := r.Create("ok-id_1.x"); err != nil {
		t.Fatalf("valid id rejected: %v", err)
	}
	if _, err := r.Create("ok-id_1.x"); err == nil {
		t.Fatal("duplicate id accepted")
	}
}
