// Package tenant is the principal layer of the multi-tenant front door:
// who is asking, what datasets they may touch, and how much ε they may
// spend there. It supplies
//
//   - a registry of tenants with API-key authentication (keys are hashed
//     with SHA-256 at rest and compared in constant time; the raw key is
//     shown exactly once, at creation),
//   - tenant→dataset authorization grants ("*" grants every dataset),
//   - per-tenant lifetime ε quotas layered ON TOP of the dataset-global
//     budget: a query must clear both its tenant's quota and the global
//     accountant, and a quota refusal happens before the durable global
//     charge so it costs zero ε,
//   - JSON file persistence (atomic temp+rename) so tenant definitions
//     survive restarts, and
//   - recovery seeding: the ledger replays per-tenant spent balances at
//     boot and SeedSpent reinstates them; an unknown tenant id in the WAL
//     fails recovery closed, mirroring the ledger's posture (losing track
//     of who spent ε is a privacy failure, not an inconvenience).
//
// The registry never stores or returns raw key material after creation.
package tenant

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gupt/internal/dp"
)

// ErrUnauthenticated is returned by Authenticate when no enabled tenant's
// key hash matches the presented key. The message is deliberately uniform:
// it does not distinguish unknown key from disabled tenant.
var ErrUnauthenticated = errors.New("tenant: unauthenticated: unknown or disabled API key")

// ErrQuotaExhausted wraps dp.ErrBudgetExhausted so a per-tenant quota
// refusal classifies as a budget refusal everywhere budget refusals are
// recognized (outcome strings, telemetry, CLI) while remaining
// distinguishable with errors.Is against this sentinel.
var ErrQuotaExhausted = fmt.Errorf("tenant quota: %w", dp.ErrBudgetExhausted)

// ErrUnknownTenant is returned when an operation names a tenant id that is
// not registered — including recovery seeding, where it fails boot closed.
var ErrUnknownTenant = errors.New("tenant: unknown tenant id")

// keyPrefix marks generated API keys so they are recognizable in configs
// and never mistaken for other secrets.
const keyPrefix = "gupt_"

// Tenant is the persisted definition of one principal. Only the SHA-256
// hash of the API key is stored.
type Tenant struct {
	ID       string `json:"id"`
	KeyHash  string `json:"keyHash"` // hex SHA-256 of the API key
	Admin    bool   `json:"admin,omitempty"`
	Disabled bool   `json:"disabled,omitempty"`
	// Grants lists dataset names this tenant may query; the single grant
	// "*" authorizes every dataset.
	Grants []string `json:"grants,omitempty"`
	// Quotas maps dataset name → lifetime ε ceiling for this tenant. A
	// dataset with no entry is limited only by the global budget.
	Quotas map[string]float64 `json:"quotas,omitempty"`
	// Rate-limit policy, enforced by internal/ratelimit at admission.
	RateQPS     float64 `json:"rateQPS,omitempty"`
	RateBurst   int     `json:"rateBurst,omitempty"`
	MaxInflight int     `json:"maxInflight,omitempty"`
}

// Info is the sanitized, observable view of one tenant: everything except
// key material, plus live spent balances.
type Info struct {
	ID          string             `json:"id"`
	Admin       bool               `json:"admin,omitempty"`
	Disabled    bool               `json:"disabled,omitempty"`
	Grants      []string           `json:"grants,omitempty"`
	Quotas      map[string]float64 `json:"quotas,omitempty"`
	RateQPS     float64            `json:"rateQPS,omitempty"`
	RateBurst   int                `json:"rateBurst,omitempty"`
	MaxInflight int                `json:"maxInflight,omitempty"`
	// Spent maps dataset → ε this tenant has consumed there (quota
	// accounting, seeded from ledger recovery at boot).
	Spent map[string]float64 `json:"spent,omitempty"`
}

// state is one tenant's live registry entry: the persisted definition,
// the decoded key hash for constant-time compares, and quota spend.
type state struct {
	def     Tenant
	keyHash []byte             // decoded KeyHash; nil if unparseable
	spent   map[string]float64 // dataset → ε consumed by this tenant
}

// Registry holds all tenants. Safe for concurrent use. Lock ordering:
// Registry.mu is a leaf — never call out to budget/ledger while holding it.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]*state
	path    string // persistence file; "" = in-memory only
}

// NewRegistry returns an empty in-memory registry (no persistence).
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*state)}
}

// Load reads a registry from path. A missing file yields an empty registry
// bound to that path (first Save creates it); a present-but-invalid file is
// an error — better to refuse boot than silently drop tenant definitions.
func Load(path string) (*Registry, error) {
	r := NewRegistry()
	r.path = path
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tenant: reading %s: %w", path, err)
	}
	var defs []Tenant
	if err := json.Unmarshal(data, &defs); err != nil {
		return nil, fmt.Errorf("tenant: parsing %s: %w", path, err)
	}
	for _, def := range defs {
		if err := r.Add(def); err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", path, err)
		}
	}
	return r, nil
}

// Save writes all tenant definitions to the bound path atomically
// (temp file + rename). A registry with no path is a no-op.
func (r *Registry) Save() error {
	r.mu.RLock()
	path := r.path
	defs := make([]Tenant, 0, len(r.tenants))
	for _, st := range r.tenants {
		defs = append(defs, st.def)
	}
	r.mu.RUnlock()
	if path == "" {
		return nil
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	data, err := json.MarshalIndent(defs, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tenants-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o600); err != nil { // key hashes are still secrets-adjacent
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// validID rejects ids that would collide with ledger string limits or
// smuggle structure into logs. Same character policy as dataset names.
func validID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("tenant: id must be 1..128 bytes, got %d", len(id))
	}
	for _, c := range id {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '.') {
			return fmt.Errorf("tenant: id %q contains %q; allowed: [a-zA-Z0-9._-]", id, c)
		}
	}
	return nil
}

// HashKey returns the hex SHA-256 of an API key — the at-rest form.
func HashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Create registers a new tenant and returns its freshly generated API key.
// This is the ONLY time the raw key exists outside the caller's hands; the
// registry keeps just the hash.
func (r *Registry) Create(id string) (key string, err error) {
	if err := validID(id); err != nil {
		return "", err
	}
	raw := make([]byte, 24)
	if _, err := rand.Read(raw); err != nil {
		return "", fmt.Errorf("tenant: generating key: %w", err)
	}
	key = keyPrefix + hex.EncodeToString(raw)
	err = r.Add(Tenant{ID: id, KeyHash: HashKey(key)})
	if err != nil {
		return "", err
	}
	return key, nil
}

// Add registers a fully specified tenant (tests, file load, key rotation).
// The id must be unused and the key hash must parse as hex SHA-256.
func (r *Registry) Add(def Tenant) error {
	if err := validID(def.ID); err != nil {
		return err
	}
	hash, err := hex.DecodeString(def.KeyHash)
	if err != nil || len(hash) != sha256.Size {
		return fmt.Errorf("tenant: %s: keyHash must be hex SHA-256", def.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[def.ID]; dup {
		return fmt.Errorf("tenant: duplicate id %q", def.ID)
	}
	cp := def
	cp.Grants = append([]string(nil), def.Grants...)
	if def.Quotas != nil {
		cp.Quotas = make(map[string]float64, len(def.Quotas))
		for k, v := range def.Quotas {
			cp.Quotas[k] = v
		}
	}
	r.tenants[def.ID] = &state{def: cp, keyHash: hash, spent: make(map[string]float64)}
	return nil
}

// Authenticate resolves a presented API key to a tenant id. The presented
// key is hashed once and compared against every registered hash with
// crypto/subtle so the scan time is independent of which (if any) tenant
// matches; disabled tenants still burn a compare but never match.
func (r *Registry) Authenticate(key string) (string, error) {
	presented := sha256.Sum256([]byte(key))
	r.mu.RLock()
	defer r.mu.RUnlock()
	matched := ""
	for id, st := range r.tenants {
		ok := subtle.ConstantTimeCompare(presented[:], st.keyHash) == 1
		if ok && !st.def.Disabled && key != "" {
			matched = id
		}
	}
	if matched == "" {
		return "", ErrUnauthenticated
	}
	return matched, nil
}

// Get returns the sanitized view of one tenant.
func (r *Registry) Get(id string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[id]
	if !ok {
		return Info{}, false
	}
	return st.info(), true
}

// List returns sanitized views of every tenant, sorted by id.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.tenants))
	for _, st := range r.tenants {
		out = append(out, st.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (st *state) info() Info {
	in := Info{
		ID:          st.def.ID,
		Admin:       st.def.Admin,
		Disabled:    st.def.Disabled,
		Grants:      append([]string(nil), st.def.Grants...),
		RateQPS:     st.def.RateQPS,
		RateBurst:   st.def.RateBurst,
		MaxInflight: st.def.MaxInflight,
	}
	if len(st.def.Quotas) > 0 {
		in.Quotas = make(map[string]float64, len(st.def.Quotas))
		for k, v := range st.def.Quotas {
			in.Quotas[k] = v
		}
	}
	if len(st.spent) > 0 {
		in.Spent = make(map[string]float64, len(st.spent))
		for k, v := range st.spent {
			in.Spent[k] = v
		}
	}
	return in
}

// Grant authorizes a tenant for a dataset ("*" = all datasets).
func (r *Registry) Grant(id, dataset string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	for _, g := range st.def.Grants {
		if g == dataset {
			return nil
		}
	}
	st.def.Grants = append(st.def.Grants, dataset)
	return nil
}

// SetQuota sets a tenant's lifetime ε ceiling on one dataset. A quota below
// the tenant's already-spent balance is legal (future charges refuse).
func (r *Registry) SetQuota(id, dataset string, eps float64) error {
	if eps < 0 {
		return fmt.Errorf("tenant: quota must be >= 0, got %v", eps)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if st.def.Quotas == nil {
		st.def.Quotas = make(map[string]float64)
	}
	st.def.Quotas[dataset] = eps
	return nil
}

// SetLimits sets a tenant's rate-limit policy.
func (r *Registry) SetLimits(id string, qps float64, burst, maxInflight int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	st.def.RateQPS, st.def.RateBurst, st.def.MaxInflight = qps, burst, maxInflight
	return nil
}

// SetAdmin toggles the admin capability (dataset registration).
func (r *Registry) SetAdmin(id string, admin bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	st.def.Admin = admin
	return nil
}

// Authorized reports whether the tenant may query the dataset.
func (r *Registry) Authorized(id, dataset string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[id]
	if !ok || st.def.Disabled {
		return false
	}
	for _, g := range st.def.Grants {
		if g == "*" || g == dataset {
			return true
		}
	}
	return false
}

// IsAdmin reports whether the tenant holds the admin capability.
func (r *Registry) IsAdmin(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[id]
	return ok && !st.def.Disabled && st.def.Admin
}

// quotaSlack absorbs float64 accumulation error in quota comparisons,
// mirroring the global accountant's tolerance posture.
const quotaSlack = 1e-9

// Reserve debits eps from the tenant's quota on dataset, refusing with
// ErrQuotaExhausted if it would exceed the ceiling. Datasets without a
// quota entry are tracked but unlimited. Call Release to back out a
// reservation whose downstream global charge was refused.
func (r *Registry) Reserve(id, dataset string, eps float64) error {
	if eps < 0 {
		return fmt.Errorf("tenant: negative reservation %v", eps)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if quota, limited := st.def.Quotas[dataset]; limited {
		if st.spent[dataset]+eps > quota+quotaSlack {
			return fmt.Errorf("%w: tenant %q dataset %q: requested %v, remaining %v",
				ErrQuotaExhausted, id, dataset, eps, quota-st.spent[dataset])
		}
	}
	st.spent[dataset] += eps
	return nil
}

// Release backs out a prior Reserve (the global charge was refused, so the
// tenant did not actually spend). Clamped at zero.
func (r *Registry) Release(id, dataset string, eps float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return
	}
	st.spent[dataset] -= eps
	if st.spent[dataset] < 0 {
		st.spent[dataset] = 0
	}
}

// Spent reports the tenant's consumed ε on one dataset.
func (r *Registry) Spent(id, dataset string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if st, ok := r.tenants[id]; ok {
		return st.spent[dataset]
	}
	return 0
}

// QuotaState reports the tenant's quota position on one dataset: ε spent,
// the quota ceiling, and whether a ceiling exists at all (limited=false
// means the tenant is bounded only by the dataset's global budget). The
// burn-down plane reads this after each charge.
func (r *Registry) QuotaState(id, dataset string) (spent, quota float64, limited bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[id]
	if !ok {
		return 0, 0, false
	}
	quota, limited = st.def.Quotas[dataset]
	return st.spent[dataset], quota, limited
}

// SpentByDataset returns every dataset the tenant has quota-tracked spend
// or a quota on, for the per-tenant /ledger slice. Datasets granted but
// never touched and without a quota do not appear.
func (r *Registry) SpentByDataset(id string) map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.tenants[id]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(st.spent)+len(st.def.Quotas))
	for ds, eps := range st.spent {
		out[ds] = eps
	}
	for ds := range st.def.Quotas {
		if _, seen := out[ds]; !seen {
			out[ds] = 0
		}
	}
	return out
}

// SeedSpent reinstates a recovered balance at boot, REPLACING the current
// value (recovery is authoritative). Unknown tenant ids are an error so
// callers can fail recovery closed: a WAL attributing spend to a tenant
// the registry no longer knows means either the registry file regressed or
// the WAL was forged — both are refuse-to-boot conditions.
func (r *Registry) SeedSpent(id, dataset string, eps float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("%w: %q (ledger attributes %v ε on %q to it; refusing to drop the balance)",
			ErrUnknownTenant, id, eps, dataset)
	}
	st.spent[dataset] = eps
	return nil
}

// SeedFromRecovery reinstates every tenant balance the ledger replayed for
// one dataset. The empty tenant id (pre-tenancy and single-tenant records)
// carries no per-tenant quota and is skipped. Any other unknown id fails
// closed.
func (r *Registry) SeedFromRecovery(dataset string, byTenant map[string]float64) error {
	for id, eps := range byTenant {
		if id == "" {
			continue
		}
		if err := r.SeedSpent(id, dataset, eps); err != nil {
			return err
		}
	}
	return nil
}
