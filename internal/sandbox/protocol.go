package sandbox

import (
	"encoding/json"
	"fmt"
	"io"

	"gupt/internal/mathutil"
)

// Request is the message a subprocess chamber writes to the analysis app's
// stdin: the block of records to compute on. The app must treat this as its
// entire world — it has no other input channel.
type Request struct {
	Block [][]float64 `json:"block"`
}

// Response is the message the analysis app writes to stdout: either the
// output vector or an application-level error string.
type Response struct {
	Output []float64 `json:"output,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// WriteRequest encodes a block as a Request on w.
func WriteRequest(w io.Writer, block []mathutil.Vec) error {
	req := Request{Block: make([][]float64, len(block))}
	for i, r := range block {
		req.Block[i] = r
	}
	if err := json.NewEncoder(w).Encode(req); err != nil {
		return fmt.Errorf("sandbox: encode request: %w", err)
	}
	return nil
}

// ReadRequest decodes a Request from r into rows.
func ReadRequest(r io.Reader) ([]mathutil.Vec, error) {
	var req Request
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, fmt.Errorf("sandbox: decode request: %w", err)
	}
	rows := make([]mathutil.Vec, len(req.Block))
	for i, b := range req.Block {
		rows[i] = mathutil.Vec(b)
	}
	return rows, nil
}

// WriteResponse encodes output (or err, if non-nil) as a Response on w.
func WriteResponse(w io.Writer, output mathutil.Vec, err error) error {
	resp := Response{}
	if err != nil {
		resp.Error = err.Error()
	} else {
		resp.Output = output
	}
	if e := json.NewEncoder(w).Encode(resp); e != nil {
		return fmt.Errorf("sandbox: encode response: %w", e)
	}
	return nil
}

// ReadResponse decodes a Response from r, converting an application-level
// error string back into an error.
func ReadResponse(r io.Reader) (mathutil.Vec, error) {
	var resp Response
	if err := json.NewDecoder(r).Decode(&resp); err != nil {
		return nil, fmt.Errorf("sandbox: decode response: %w", err)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("sandbox: app error: %s", resp.Error)
	}
	return mathutil.Vec(resp.Output), nil
}

// ServeApp is the main loop for an analysis app running inside a subprocess
// chamber: read one Request from in, run the program, write one Response to
// out. Program errors are reported in-band; transport errors are returned.
func ServeApp(in io.Reader, out io.Writer, run func(block []mathutil.Vec) (mathutil.Vec, error)) error {
	block, err := ReadRequest(in)
	if err != nil {
		return err
	}
	result, runErr := run(block)
	return WriteResponse(out, result, runErr)
}
