package sandbox

import (
	"strings"
	"testing"
)

// FuzzReadResponse checks the chamber wire decoder never panics on
// arbitrary subprocess output — a malicious app controls this byte stream.
func FuzzReadResponse(f *testing.F) {
	f.Add(`{"output":[1,2]}`)
	f.Add(`{"error":"boom"}`)
	f.Add(`{"output":[1e400]}`)
	f.Add(`not json at all`)
	f.Add(`{"output":null,"error":""}`)
	f.Fuzz(func(t *testing.T, input string) {
		out, err := ReadResponse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever decoded must be a plain float slice; the engine clamps
		// the values, so no further invariant is needed here.
		_ = out
	})
}

// FuzzReadRequest mirrors it for the app-side decoder.
func FuzzReadRequest(f *testing.F) {
	f.Add(`{"block":[[1,2],[3,4]]}`)
	f.Add(`{"block":[]}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		rows, err := ReadRequest(strings.NewReader(input))
		if err != nil {
			return
		}
		_ = rows
	})
}
