package sandbox

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
)

// TestMain doubles as the sandboxed analysis app: when GUPT_TEST_APP is
// set, the test binary acts as a subprocess-chamber app instead of running
// tests. This exercises the real exec path without building a separate
// binary.
func TestMain(m *testing.M) {
	mode := os.Getenv("GUPT_TEST_APP")
	if mode == "" {
		os.Exit(m.Run())
	}
	err := ServeApp(os.Stdin, os.Stdout, func(block []mathutil.Vec) (mathutil.Vec, error) {
		switch mode {
		case "mean":
			return analytics.Mean{Col: 0}.Run(block)
		case "sleep":
			time.Sleep(5 * time.Second)
			return analytics.Mean{Col: 0}.Run(block)
		case "crash":
			os.Exit(3)
			return nil, nil
		case "apperr":
			return nil, errors.New("deliberate app failure")
		case "state":
			// State attack: leave a marker in scratch; report whether a
			// marker from a previous run survived.
			scratch := os.Getenv(ScratchEnv)
			marker := filepath.Join(scratch, "marker")
			found := 0.0
			if _, err := os.Stat(marker); err == nil {
				found = 1
			}
			if err := os.WriteFile(marker, []byte("leak"), 0o600); err != nil {
				return nil, err
			}
			return mathutil.Vec{found}, nil
		case "cwdstate":
			// Same attack via the working directory instead of the env var.
			found := 0.0
			if _, err := os.Stat("cwd-marker"); err == nil {
				found = 1
			}
			if err := os.WriteFile("cwd-marker", []byte("leak"), 0o600); err != nil {
				return nil, err
			}
			return mathutil.Vec{found}, nil
		case "env":
			// Report how many environment variables we can see beyond the
			// sanctioned scratch variable.
			extra := 0.0
			for _, kv := range os.Environ() {
				if !strings.HasPrefix(kv, ScratchEnv+"=") {
					extra++
				}
			}
			return mathutil.Vec{extra}, nil
		default:
			return nil, fmt.Errorf("unknown test app %q", mode)
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func testBlock(n int) []mathutil.Vec {
	out := make([]mathutil.Vec, n)
	for i := range out {
		out[i] = mathutil.Vec{float64(i)}
	}
	return out
}

func subprocessChamber(t *testing.T, mode string, policy Policy) *Subprocess {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return &Subprocess{
		Path:        exe,
		Policy:      policy,
		ScratchRoot: t.TempDir(),
		ExtraEnv:    []string{"GUPT_TEST_APP=" + mode},
	}
}

func TestInProcessBasic(t *testing.T) {
	ch := &InProcess{Program: analytics.Mean{Col: 0}}
	out, err := ch.Execute(context.Background(), testBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("mean = %v, want 2", out[0])
	}
}

func TestInProcessDataIsolation(t *testing.T) {
	evil := analytics.Func{ProgName: "mutator", Dims: 1, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		for i := range block {
			block[i][0] = -999 // try to corrupt the platform's data
		}
		return mathutil.Vec{0}, nil
	}}
	block := testBlock(3)
	if _, err := (&InProcess{Program: evil}).Execute(context.Background(), block); err != nil {
		t.Fatal(err)
	}
	for i, r := range block {
		if r[0] != float64(i) {
			t.Fatalf("chamber leaked mutable data: row %d = %v", i, r[0])
		}
	}
}

func TestInProcessPanicIsolation(t *testing.T) {
	bomb := analytics.Func{ProgName: "bomb", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		panic("boom")
	}}
	// Without a substitute, the panic surfaces as an error.
	_, err := (&InProcess{Program: bomb}).Execute(context.Background(), testBlock(1))
	if !errors.Is(err, ErrPanicked) {
		t.Errorf("err = %v, want ErrPanicked", err)
	}
	// With a substitute, the platform releases the constant instead.
	ch := &InProcess{Program: bomb, Policy: Policy{Substitute: mathutil.Vec{7}}}
	out, err := ch.Execute(context.Background(), testBlock(1))
	if err != nil || out[0] != 7 {
		t.Errorf("substituted output = %v, %v; want 7", out, err)
	}
}

func TestInProcessKillOnQuantum(t *testing.T) {
	slow := analytics.Func{ProgName: "slow", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		time.Sleep(5 * time.Second)
		return mathutil.Vec{1}, nil
	}}
	ch := &InProcess{Program: slow, Policy: Policy{Quantum: 50 * time.Millisecond, Substitute: mathutil.Vec{42}}}
	start := time.Now()
	out, err := ch.Execute(context.Background(), testBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Errorf("killed block output = %v, want substitute 42", out[0])
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("kill took %v, quantum was 50ms", elapsed)
	}
	// Without a substitute the kill is an error.
	ch2 := &InProcess{Program: slow, Policy: Policy{Quantum: 50 * time.Millisecond}}
	if _, err := ch2.Execute(context.Background(), testBlock(1)); !errors.Is(err, ErrKilled) {
		t.Errorf("err = %v, want ErrKilled", err)
	}
}

// Timing-attack defense: with a quantum, a fast block takes just as long as
// the quantum — completion time is data-independent.
func TestInProcessTimingNormalization(t *testing.T) {
	const quantum = 150 * time.Millisecond
	ch := &InProcess{Program: analytics.Mean{Col: 0}, Policy: Policy{Quantum: quantum, Substitute: mathutil.Vec{0}}}
	start := time.Now()
	if _, err := ch.Execute(context.Background(), testBlock(3)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < quantum {
		t.Errorf("fast block finished in %v, must be held to the %v quantum", elapsed, quantum)
	}
}

func TestInProcessContextCancel(t *testing.T) {
	slow := analytics.Func{ProgName: "slow", Dims: 1, F: func([]mathutil.Vec) (mathutil.Vec, error) {
		time.Sleep(5 * time.Second)
		return mathutil.Vec{1}, nil
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := (&InProcess{Program: slow}).Execute(ctx, testBlock(1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context deadline", err)
	}
}

func TestInProcessNilProgram(t *testing.T) {
	if _, err := (&InProcess{}).Execute(context.Background(), testBlock(1)); err == nil {
		t.Error("nil program accepted")
	}
}

func TestSubprocessBasic(t *testing.T) {
	ch := subprocessChamber(t, "mean", Policy{})
	out, err := ch.Execute(context.Background(), testBlock(5))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("subprocess mean = %v, want 2", out[0])
	}
}

func TestSubprocessKillOnQuantum(t *testing.T) {
	ch := subprocessChamber(t, "sleep", Policy{Quantum: 200 * time.Millisecond, Substitute: mathutil.Vec{9}})
	start := time.Now()
	out, err := ch.Execute(context.Background(), testBlock(3))
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 9 {
		t.Errorf("killed subprocess output = %v, want substitute 9", out[0])
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("kill took %v", elapsed)
	}
}

func TestSubprocessCrashSubstitute(t *testing.T) {
	ch := subprocessChamber(t, "crash", Policy{Substitute: mathutil.Vec{5}})
	out, err := ch.Execute(context.Background(), testBlock(1))
	if err != nil || out[0] != 5 {
		t.Errorf("crash substitute = %v, %v; want 5", out, err)
	}
	// Without a substitute the crash is an error.
	ch2 := subprocessChamber(t, "crash", Policy{})
	if _, err := ch2.Execute(context.Background(), testBlock(1)); err == nil {
		t.Error("crash with no substitute must error")
	}
}

func TestSubprocessAppError(t *testing.T) {
	ch := subprocessChamber(t, "apperr", Policy{})
	if _, err := ch.Execute(context.Background(), testBlock(1)); err == nil || !strings.Contains(err.Error(), "deliberate app failure") {
		t.Errorf("app error not propagated: %v", err)
	}
}

// State-attack defense: a program that leaves a marker in its scratch space
// must never find it again on a later execution.
func TestSubprocessStateAttackDefeated(t *testing.T) {
	for _, mode := range []string{"state", "cwdstate"} {
		ch := subprocessChamber(t, mode, Policy{})
		for run := 0; run < 3; run++ {
			out, err := ch.Execute(context.Background(), testBlock(1))
			if err != nil {
				t.Fatalf("%s run %d: %v", mode, run, err)
			}
			if out[0] != 0 {
				t.Fatalf("%s run %d: marker from a previous execution leaked through", mode, run)
			}
		}
	}
}

// The sandboxed process sees an empty environment apart from its scratch
// path and explicitly whitelisted variables.
func TestSubprocessEnvironmentCleared(t *testing.T) {
	t.Setenv("GUPT_SECRET_FOR_TEST", "should-not-leak")
	ch := subprocessChamber(t, "env", Policy{})
	out, err := ch.Execute(context.Background(), testBlock(1))
	if err != nil {
		t.Fatal(err)
	}
	// The only extra variable is the GUPT_TEST_APP mode selector we
	// whitelisted ourselves.
	if out[0] != 1 {
		t.Errorf("subprocess saw %v extra env vars, want exactly the 1 whitelisted", out[0])
	}
}

func TestSubprocessScratchWiped(t *testing.T) {
	root := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	ch := &Subprocess{Path: exe, ScratchRoot: root, ExtraEnv: []string{"GUPT_TEST_APP=state"}}
	if _, err := ch.Execute(context.Background(), testBlock(1)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("scratch root not wiped: %d entries remain", len(entries))
	}
}

func TestSubprocessTimingNormalization(t *testing.T) {
	const quantum = 300 * time.Millisecond
	ch := subprocessChamber(t, "mean", Policy{Quantum: quantum, Substitute: mathutil.Vec{0}})
	start := time.Now()
	if _, err := ch.Execute(context.Background(), testBlock(2)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < quantum {
		t.Errorf("fast subprocess finished in %v, must be held to %v", elapsed, quantum)
	}
}

func TestSubprocessMissingExecutable(t *testing.T) {
	ch := &Subprocess{Path: ""}
	if _, err := ch.Execute(context.Background(), testBlock(1)); err == nil {
		t.Error("empty path accepted")
	}
	ch2 := &Subprocess{Path: "/nonexistent/gupt-app", Policy: Policy{Substitute: mathutil.Vec{1}}}
	// Even a missing binary resolves to the substitute when configured: the
	// platform never exposes failure modes to the output channel.
	out, err := ch2.Execute(context.Background(), testBlock(1))
	if err != nil || out[0] != 1 {
		t.Errorf("missing exe substitute = %v, %v", out, err)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf strings.Builder
	block := testBlock(3)
	if err := WriteRequest(&buf, block); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2][0] != 2 {
		t.Errorf("request round trip = %v", got)
	}

	var rbuf strings.Builder
	if err := WriteResponse(&rbuf, mathutil.Vec{1.5}, nil); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(strings.NewReader(rbuf.String()))
	if err != nil || out[0] != 1.5 {
		t.Errorf("response round trip = %v, %v", out, err)
	}

	var ebuf strings.Builder
	if err := WriteResponse(&ebuf, nil, errors.New("bad")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponse(strings.NewReader(ebuf.String())); err == nil {
		t.Error("error response round trip lost the error")
	}

	if _, err := ReadRequest(strings.NewReader("not json")); err == nil {
		t.Error("garbage request accepted")
	}
	if _, err := ReadResponse(strings.NewReader("not json")); err == nil {
		t.Error("garbage response accepted")
	}
}
