package sandbox

import (
	"context"
	"os"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
)

func benchBlock(n int) []mathutil.Vec {
	out := make([]mathutil.Vec, n)
	for i := range out {
		out[i] = mathutil.Vec{float64(i % 150)}
	}
	return out
}

func BenchmarkInProcessExecute(b *testing.B) {
	ch := &InProcess{Program: analytics.Mean{Col: 0}}
	block := benchBlock(500)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Execute(ctx, block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubprocessExecute measures the full isolation cost per block:
// process spawn, scratch setup/teardown, and protocol serialization.
func BenchmarkSubprocessExecute(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	ch := &Subprocess{
		Path:        exe,
		ScratchRoot: b.TempDir(),
		ExtraEnv:    []string{"GUPT_TEST_APP=mean"},
	}
	block := benchBlock(500)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Execute(ctx, block); err != nil {
			b.Fatal(err)
		}
	}
}
