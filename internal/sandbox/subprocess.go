package sandbox

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"time"

	"gupt/internal/mathutil"
)

// ScratchEnv is the single environment variable a sandboxed app receives:
// the path of its private, per-execution scratch directory. Everything the
// app writes there is destroyed when the execution ends, which is what
// breaks state attacks (paper §6.2) — a program cannot leave a marker for a
// later block or query to find.
const ScratchEnv = "GUPT_SCRATCH"

// Subprocess is a chamber that executes the analysis program as a separate
// OS process per block:
//
//   - fresh process and address space per execution;
//   - environment cleared except ScratchEnv (plus any explicitly
//     whitelisted ExtraEnv entries, e.g. GOCOVERDIR in tests);
//   - a private scratch directory, wiped after the run;
//   - the block arrives on stdin and the output leaves on stdout
//     (sandbox.Request / sandbox.Response); there is no other channel;
//   - the process is killed if it outlives the quantum, and the
//     data-independent substitute is released in its place.
type Subprocess struct {
	// Path and Args name the analysis app executable (e.g. cmd/gupt-app).
	Path string
	Args []string
	// Policy is the execution policy; Quantum > 0 additionally arms the
	// kill deadline.
	Policy Policy
	// ScratchRoot is where per-execution scratch directories are created;
	// empty means the OS temp dir.
	ScratchRoot string
	// ExtraEnv entries ("K=V") are appended to the otherwise-empty
	// environment. Use sparingly; anything here is visible to the
	// untrusted program.
	ExtraEnv []string
}

// ReadOnlyBlocks implements ReadOnlyChamber: the block is serialized onto
// the child's stdin and never mutated in this process.
func (c *Subprocess) ReadOnlyBlocks() bool { return true }

// Execute implements Chamber.
func (c *Subprocess) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	if c.Path == "" {
		return nil, errors.New("sandbox: Subprocess chamber has no executable path")
	}
	start := time.Now()

	scratch, err := os.MkdirTemp(c.ScratchRoot, "gupt-chamber-*")
	if err != nil {
		return nil, fmt.Errorf("sandbox: create scratch: %w", err)
	}
	// The scratch space is emptied upon program termination, whatever the
	// outcome (state-attack defense).
	defer os.RemoveAll(scratch)

	runCtx := ctx
	var cancel context.CancelFunc
	if c.Policy.Quantum > 0 {
		runCtx, cancel = context.WithTimeout(ctx, c.Policy.Quantum)
		defer cancel()
	}

	var stdin bytes.Buffer
	if err := WriteRequest(&stdin, block); err != nil {
		return nil, err
	}
	var stdout, stderr bytes.Buffer

	cmd := exec.CommandContext(runCtx, c.Path, c.Args...)
	cmd.Stdin = &stdin
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	cmd.Dir = scratch
	cmd.Env = append([]string{ScratchEnv + "=" + scratch}, c.ExtraEnv...)
	cmd.WaitDelay = time.Second // reap even if the app holds pipes open

	c.Policy.Metrics.Counter("sandbox.subprocess.spawns").Inc()
	runErr := cmd.Run()

	if runCtx.Err() == context.DeadlineExceeded {
		// Killed by the quantum: release the substitute. No hold needed;
		// we are already exactly at the quantum.
		c.Policy.Metrics.Counter("sandbox.subprocess.kills").Inc()
		return c.Policy.failureOutput(ErrKilled, c.Path)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if runErr != nil {
		out, err := c.Policy.failureOutput(
			fmt.Errorf("sandbox: app process failed: %w (stderr: %s)", runErr, truncate(stderr.String(), 256)), "")
		c.Policy.holdRemaining(ctx, start)
		return out, err
	}

	result, err := ReadResponse(&stdout)
	if err != nil {
		out, ferr := c.Policy.failureOutput(err, "")
		c.Policy.holdRemaining(ctx, start)
		return out, ferr
	}
	c.Policy.holdRemaining(ctx, start)
	return result, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
