// Package sandbox implements GUPT's isolated execution chambers (paper §6).
// A chamber runs one untrusted analysis program on one data block and
// enforces the platform's side-channel defenses:
//
//   - State attacks: each execution gets fresh copies of its block, and the
//     subprocess chamber gives each run a brand-new OS process with a
//     private scratch directory that is wiped afterwards, so no state can
//     flow between blocks or between queries.
//   - Timing attacks: with a positive Quantum every block consumes exactly
//     the same wall-clock time — early finishers are held until the quantum
//     elapses, and overruns are killed and replaced by a data-independent
//     substitute value inside the expected output range. Block runtime is
//     therefore independent of the data.
//   - Privacy-budget attacks are defended one layer up (the accountant in
//     internal/dp is owned by the platform), but chambers contribute by
//     never exposing the budget to the program.
//
// The paper's deployment uses AppArmor to confine the analysis process; the
// subprocess chamber reproduces the properties GUPT's privacy argument
// needs (fresh process, empty environment, private wiped scratch space,
// hard kill on deadline) with portable os/exec machinery. See DESIGN.md §3.
package sandbox

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
	"gupt/internal/telemetry"
)

// Chamber executes an untrusted computation on one block of records.
type Chamber interface {
	// Execute runs the computation on block and returns its output vector.
	// Implementations must not allow the computation to retain access to
	// block after returning.
	Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error)
}

// BlockChamber is an optional Chamber extension for implementations that
// want the block's index within its query — the hook distributed chambers
// use for consistent block→worker assignment. The engine calls
// ExecuteBlock when a chamber implements it and falls back to Execute
// otherwise. The index must not influence the computation's result: it is
// routing metadata only.
type BlockChamber interface {
	Chamber
	ExecuteBlock(ctx context.Context, idx int, block []mathutil.Vec) (mathutil.Vec, error)
}

// ReadOnlyChamber is an optional Chamber extension declaring that Execute
// never mutates the rows of the block it is handed (and does not retain
// them after returning). The engine hands such chambers zero-copy views of
// the dataset partition instead of per-block clones — the block rows flow
// straight into the wire encoder or the chamber's own private copy.
// Chambers that cannot make this promise simply don't implement it.
type ReadOnlyChamber interface {
	// ReadOnlyBlocks returns true when the chamber treats block rows as
	// immutable. A false return disables the zero-copy path (useful for
	// wrappers that forward to an unknown inner chamber).
	ReadOnlyBlocks() bool
}

// ErrKilled is returned (wrapped) when a computation exceeded its quantum
// and no substitute output was configured.
var ErrKilled = errors.New("sandbox: computation exceeded its time quantum")

// ErrPanicked is returned (wrapped) when an in-process computation panicked
// and no substitute output was configured.
var ErrPanicked = errors.New("sandbox: computation panicked")

// Policy is the per-block execution policy shared by all chamber types.
type Policy struct {
	// Quantum is the fixed wall-clock time every block execution consumes.
	// Zero disables timing normalization: blocks run to completion with no
	// deadline. (The experiment harness uses zero for throughput runs; the
	// hosted-platform configuration sets it.)
	Quantum time.Duration
	// Substitute is the data-independent output released when a block is
	// killed or fails (paper §6.2: "a constant value within the expected
	// output range"). If nil, failures surface as errors instead — useful
	// in development, but a production deployment should always set it,
	// since propagating failure timing can itself leak.
	Substitute mathutil.Vec
	// Metrics, when non-nil, receives chamber lifecycle counters
	// (sandbox.*.spawns / kills). Counts only — a chamber never reports
	// block contents or per-execution timings through this.
	Metrics *telemetry.Registry
}

// failureOutput resolves a failed block to the substitute output, or to an
// error when no substitute is configured.
func (p Policy) failureOutput(base error, detail string) (mathutil.Vec, error) {
	if p.Substitute != nil {
		return p.Substitute.Clone(), nil
	}
	if detail != "" {
		return nil, fmt.Errorf("%w: %s", base, detail)
	}
	return nil, base
}

// holdRemaining sleeps until the quantum has fully elapsed since start, so
// completion time does not depend on the data. A nil-deadline context can
// cut the wait short (caller cancellation is not data-dependent).
func (p Policy) holdRemaining(ctx context.Context, start time.Time) {
	if p.Quantum <= 0 {
		return
	}
	remaining := p.Quantum - time.Since(start)
	if remaining <= 0 {
		return
	}
	t := time.NewTimer(remaining)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// InProcess is a chamber that runs a Program inside the current process.
// It provides data isolation (the program sees a private copy of the
// block), panic isolation, and timing normalization — but a malicious
// program sharing our address space could still keep global state, so the
// hosted platform uses Subprocess chambers for analyst-supplied code.
// InProcess is intended for platform-trusted programs and for benchmarking
// the isolation overhead (paper §6.1).
type InProcess struct {
	Program analytics.Program
	Policy  Policy
}

// ReadOnlyBlocks implements ReadOnlyChamber: Execute clones the block into
// a private copy before the program runs, so the caller's rows are never
// touched and the engine may skip its own per-block clone.
func (c *InProcess) ReadOnlyBlocks() bool { return true }

// Execute implements Chamber.
func (c *InProcess) Execute(ctx context.Context, block []mathutil.Vec) (mathutil.Vec, error) {
	if c.Program == nil {
		return nil, errors.New("sandbox: InProcess chamber has no program")
	}
	c.Policy.Metrics.Counter("sandbox.inprocess.spawns").Inc()
	start := time.Now()

	// The program gets its own copy: it can never mutate the caller's data.
	private := make([]mathutil.Vec, len(block))
	for i, r := range block {
		private[i] = r.Clone()
	}

	type result struct {
		out mathutil.Vec
		err error
	}
	done := make(chan result, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: fmt.Errorf("%w: %v", ErrPanicked, r)}
			}
		}()
		out, err := c.Program.Run(private)
		done <- result{out: out, err: err}
	}()

	var deadline <-chan time.Time
	if c.Policy.Quantum > 0 {
		t := time.NewTimer(c.Policy.Quantum)
		defer t.Stop()
		deadline = t.C
	}

	select {
	case r := <-done:
		if r.err != nil {
			out, err := c.Policy.failureOutput(r.err, "")
			c.Policy.holdRemaining(ctx, start)
			return out, err
		}
		c.Policy.holdRemaining(ctx, start)
		return r.out, nil
	case <-deadline:
		// The goroutine is abandoned; it holds only its private copy.
		c.Policy.Metrics.Counter("sandbox.inprocess.kills").Inc()
		return c.Policy.failureOutput(ErrKilled, c.Program.Name())
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
