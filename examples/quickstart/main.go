// Quickstart: register a dataset with a lifetime privacy budget and run a
// differentially private average — the "average age" query the GUPT paper
// uses throughout (§5.1, Figs. 7–8).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"gupt"
	"gupt/internal/workload"
)

func main() {
	log.SetFlags(0)

	// The data owner's side: a census table of 32,561 ages, a lifetime
	// privacy budget of ε = 10, and the public knowledge that ages lie in
	// [0, 150] (a loose, non-sensitive bound — paper §3.1).
	census := workload.CensusIncome(1, workload.CensusRows)
	rows := make([][]float64, census.NumRows())
	for i := range rows {
		rows[i] = census.Row(i)
	}

	platform := gupt.New()
	err := platform.Register("census", rows, []string{"age"}, gupt.DatasetOptions{
		TotalBudget: 10,
		Ranges:      []gupt.Range{{Lo: 0, Hi: 150}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The analyst's side: an average-age query with an explicit privacy
	// budget. The Mean program is a black box to the platform; any
	// Program implementation (or uploaded binary) works the same way.
	res, err := platform.Run(context.Background(), gupt.Query{
		Dataset:      "census",
		Program:      gupt.Mean{Col: 0},
		OutputRanges: []gupt.Range{{Lo: 0, Hi: 150}},
		Epsilon:      1,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	trueMean := workload.CensusTrueMean
	fmt.Printf("differentially private average age: %.2f (true: %.2f)\n", res.Output[0], trueMean)
	fmt.Printf("privacy spent: eps=%.2f across %d blocks of %d records\n",
		res.EpsilonSpent, res.NumBlocks, res.BlockSize)

	remaining, err := platform.RemainingBudget("census")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remaining lifetime budget: %.2f\n", remaining)

	// The platform owns the ledger: once the budget runs out, queries are
	// refused and consume nothing.
	for i := 0; ; i++ {
		_, err := platform.Run(context.Background(), gupt.Query{
			Dataset:      "census",
			Program:      gupt.Mean{Col: 0},
			OutputRanges: []gupt.Range{{Lo: 0, Hi: 150}},
			Epsilon:      2,
			Seed:         int64(i),
		})
		if err != nil {
			fmt.Printf("after %d more queries: %v\n", i, err)
			break
		}
	}
}
