// Budget pacing: the paper's usability pitch (§5) — analysts state accuracy
// goals instead of abstract ε values, GUPT translates them using the aged
// sample and stretches the dataset's lifetime budget across more queries
// (Figs. 7–8); and a fixed budget is split across heterogeneous queries in
// proportion to their noise scales (§5.2, Example 4).
//
//	go run ./examples/budget-pacing
package main

import (
	"context"
	"fmt"
	"log"

	"gupt"
	"gupt/internal/workload"
)

func main() {
	log.SetFlags(0)

	census := workload.CensusIncome(2, workload.CensusRows)
	rows := make([][]float64, census.NumRows())
	for i := range rows {
		rows[i] = census.Row(i)
	}

	platform := gupt.New()
	err := platform.Register("census", rows, []string{"age"}, gupt.DatasetOptions{
		TotalBudget:  25,
		Ranges:       []gupt.Range{{Lo: 0, Hi: 150}},
		AgedFraction: 0.1, // 10% of rows have aged out of privacy protection (§3.3)
		Seed:         4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: accuracy goals instead of epsilons. "90% accuracy with 90%
	// confidence" — GUPT works out the cheapest ε from the aged sample.
	goal := gupt.AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	ranges := []gupt.Range{{Lo: 0, Hi: 150}}
	blockSize := census.NumRows() / 300

	preview, err := platform.EstimateEpsilon("census", gupt.Mean{Col: 0}, blockSize, ranges, goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the accuracy goal costs eps=%.3f per query (vs a naive constant eps=1)\n", preview)
	fmt.Printf("-> the same lifetime budget runs %.1fx more queries\n\n", 1/preview)

	res, err := platform.Run(context.Background(), gupt.Query{
		Dataset:      "census",
		Program:      gupt.Mean{Col: 0},
		OutputRanges: ranges,
		Accuracy:     &goal,
		BlockSize:    blockSize,
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private average age %.2f (true %.2f), eps charged %.3f\n\n",
		res.Output[0], workload.CensusTrueMean, res.EpsilonSpent)

	// Part 2: splitting a fixed budget between a mean and a variance query
	// (Example 4). The variance's output range is wider by a factor of
	// ~max, so an equal split would drown it in noise; the zeta-
	// proportional split equalizes the two queries' noise.
	const sessionBudget = 2.0
	maxAge := 150.0
	n := census.NumRows()
	zetaMean := maxAge * float64(blockSize) / float64(n)
	zetaVar := maxAge * maxAge / 4 * float64(blockSize) / float64(n)
	split, err := gupt.DistributeBudget(sessionBudget, []float64{zetaMean, zetaVar})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("splitting a session budget of %.1f between mean and variance queries:\n", sessionBudget)
	fmt.Printf("  mean:     eps=%.4f (zeta %.3f)\n", split[0], zetaMean)
	fmt.Printf("  variance: eps=%.4f (zeta %.3f)\n", split[1], zetaVar)

	mean, err := platform.Run(context.Background(), gupt.Query{
		Dataset: "census", Program: gupt.Mean{Col: 0},
		OutputRanges: []gupt.Range{{Lo: 0, Hi: maxAge}},
		Epsilon:      split[0], BlockSize: blockSize, Seed: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	variance, err := platform.Run(context.Background(), gupt.Query{
		Dataset: "census", Program: gupt.Variance{Col: 0},
		OutputRanges: []gupt.Range{{Lo: 0, Hi: maxAge * maxAge / 4}},
		Epsilon:      split[1], BlockSize: blockSize, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  private mean     = %8.2f\n", mean.Output[0])
	fmt.Printf("  private variance = %8.2f\n", variance.Output[0])

	remaining, _ := platform.RemainingBudget("census")
	fmt.Printf("\nremaining lifetime budget: %.3f\n", remaining)
}
