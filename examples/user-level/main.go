// User-level privacy: when a dataset holds several records per user,
// record-level DP under-protects — the paper flags this in §8.1. GUPT's
// block structure extends cleanly: keep each user's records together in
// blocks and the ε guarantee covers the user's entire contribution, at the
// same noise level.
//
//	go run ./examples/user-level
package main

import (
	"context"
	"fmt"
	"log"

	"gupt"
	"gupt/internal/mathutil"
)

func main() {
	log.SetFlags(0)

	// A purchases table: 2,000 users with 1–8 transactions each,
	// (userID, amount).
	rng := mathutil.NewRNG(3)
	var rows [][]float64
	for user := 0; user < 2000; user++ {
		spend := 40 + 20*rng.NormFloat64() // this user's typical basket
		for tx := 0; tx < 1+rng.Intn(8); tx++ {
			amount := mathutil.Clamp(spend+10*rng.NormFloat64(), 0, 500)
			rows = append(rows, []float64{float64(user), amount})
		}
	}

	platform := gupt.New()
	if err := platform.Register("purchases", rows, []string{"user", "amount"}, gupt.DatasetOptions{
		TotalBudget: 10,
		Ranges:      []gupt.Range{{Lo: 0, Hi: 1999}, {Lo: 0, Hi: 500}},
	}); err != nil {
		log.Fatal(err)
	}

	// Average transaction amount, with the *user* as the privacy unit: all
	// of a user's transactions stay together in one block, so the released
	// value is insensitive to any single user's entire history.
	res, err := platform.Run(context.Background(), gupt.Query{
		Dataset:      "purchases",
		Program:      gupt.Mean{Col: 1},
		OutputRanges: []gupt.Range{{Lo: 0, Hi: 500}},
		Epsilon:      1,
		BlockSize:    100,
		UserLevel:    true,
		UserColumn:   0,
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}

	truth := 0.0
	for _, r := range rows {
		truth += r[1]
	}
	truth /= float64(len(rows))
	fmt.Printf("user-level private average purchase: %.2f (true %.2f)\n", res.Output[0], truth)
	fmt.Printf("%d transactions from 2000 users across %d blocks — no user is split\n",
		len(rows), res.NumBlocks)
}
