// Regression: private carcinogen classification on the life-sciences
// dataset (the paper's Fig. 3 workload). An off-the-shelf logistic
// regression runs unmodified inside GUPT; the released model is an
// ε-differentially private average of per-block models.
//
//	go run ./examples/regression
package main

import (
	"context"
	"fmt"
	"log"

	"gupt"
	"gupt/internal/analytics"
	"gupt/internal/workload"
)

func main() {
	log.SetFlags(0)

	const n = 8000
	data := workload.LifeSci(5, n)
	rows := make([][]float64, data.NumRows())
	for i := range rows {
		rows[i] = data.Row(i) // 10 features + reactivity label
	}

	platform := gupt.New()
	if err := platform.Register("compounds", rows, nil, gupt.DatasetOptions{
		TotalBudget: 30,
	}); err != nil {
		log.Fatal(err)
	}

	logreg := gupt.LogisticRegression{
		FeatureDims: workload.LifeSciDims,
		LabelCol:    workload.LifeSciDims,
		Iters:       150,
		LearnRate:   0.5,
		L2:          1e-4,
	}
	// Tight output ranges for the regularized model parameters.
	ranges := make([]gupt.Range, logreg.OutputDims())
	for i := range ranges {
		ranges[i] = gupt.Range{Lo: -3, Hi: 3}
	}

	fmt.Println("privacy budget vs classifier accuracy (paper Fig. 3):")
	evalRows := data.Rows()
	for _, eps := range []float64{2, 6, 10} {
		res, err := platform.Run(context.Background(), gupt.Query{
			Dataset:      "compounds",
			Program:      logreg,
			OutputRanges: ranges,
			Epsilon:      eps,
			Seed:         int64(eps),
		})
		if err != nil {
			log.Fatal(err)
		}
		acc := analytics.ClassificationAccuracy(res.Output, evalRows,
			workload.LifeSciDims, workload.LifeSciDims)
		fmt.Printf("  eps=%4.1f  accuracy=%.1f%%\n", eps, 100*acc)
	}

	// Non-private reference: the same black box on the full dataset.
	params, err := logreg.Run(evalRows)
	if err != nil {
		log.Fatal(err)
	}
	acc := analytics.ClassificationAccuracy(params, evalRows, workload.LifeSciDims, workload.LifeSciDims)
	fmt.Printf("  non-private baseline accuracy=%.1f%%\n", 100*acc)
}
