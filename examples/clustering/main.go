// Clustering: private k-means over the life-sciences dataset (the paper's
// Fig. 4 workload) — an unmodified scipy-style k-means runs as a black box
// and GUPT releases noisy, canonically ordered cluster centers.
//
//	go run ./examples/clustering
package main

import (
	"context"
	"fmt"
	"log"

	"gupt"
	"gupt/internal/analytics"
	"gupt/internal/workload"
)

func main() {
	log.SetFlags(0)

	const n = 8000 // a slice of the ds1.10-scale dataset keeps this example snappy
	data := workload.LifeSci(3, n)
	rows := make([][]float64, data.NumRows())
	for i := range rows {
		rows[i] = data.Row(i)[:workload.LifeSciDims] // features only
	}

	platform := gupt.New()
	if err := platform.Register("compounds", rows, nil, gupt.DatasetOptions{
		TotalBudget: 20,
	}); err != nil {
		log.Fatal(err)
	}

	// The analyst supplies tight per-coordinate output ranges (the exact
	// attribute bounds, as in the paper's GUPT-tight configuration) for
	// the flattened k * dims center vector.
	perAttr := gupt.Range{Lo: -10, Hi: 10}
	ranges := make([]gupt.Range, 0, workload.LifeSciClusters*workload.LifeSciDims)
	for i := 0; i < workload.LifeSciClusters*workload.LifeSciDims; i++ {
		ranges = append(ranges, perAttr)
	}

	kmeans := gupt.KMeans{
		K:           workload.LifeSciClusters,
		FeatureDims: workload.LifeSciDims,
		Iters:       20,
		Seed:        1,
	}
	res, err := platform.Run(context.Background(), gupt.Query{
		Dataset:      "compounds",
		Program:      kmeans,
		OutputRanges: ranges,
		Epsilon:      8,
		BlockSize:    64, // many blocks keep per-coordinate noise low (§4.3)
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	centers, err := analytics.UnflattenCenters(res.Output, workload.LifeSciClusters, workload.LifeSciDims)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("differentially private cluster centers (sorted by first coordinate):")
	for i, c := range centers {
		fmt.Printf("  center %d: [%6.2f %6.2f %6.2f ...]\n", i, c[0], c[1], c[2])
	}

	// Quality check against the non-private run of the same black box.
	features := data.Rows()
	for i := range features {
		features[i] = features[i][:workload.LifeSciDims]
	}
	base, err := kmeans.Run(features)
	if err != nil {
		log.Fatal(err)
	}
	baseCenters, _ := analytics.UnflattenCenters(base, workload.LifeSciClusters, workload.LifeSciDims)
	fmt.Printf("\nintra-cluster variance: private %.2f vs non-private %.2f\n",
		analytics.IntraClusterVariance(features, centers),
		analytics.IntraClusterVariance(features, baseCenters))
}
