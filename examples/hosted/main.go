// Hosted: the full service topology in one process — two gupt-worker
// daemons, a guptd-style computation-manager server distributing blocks
// across them, and an analyst client speaking the wire protocol. In
// production these are three binaries on separate machines (cmd/guptd,
// cmd/gupt-worker, cmd/gupt-cli); the pieces are identical.
//
//	go run ./examples/hosted
package main

import (
	"fmt"
	"log"
	"net"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/workload"
)

func main() {
	log.SetFlags(0)

	// Two worker daemons: the per-node client component of the computation
	// manager (paper §6).
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		w := compman.NewWorker(compman.WorkerConfig{})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = w.Serve(l) }()
		defer w.Close()
		workerAddrs = append(workerAddrs, l.Addr().String())
	}

	// The trusted server: dataset manager + budget ledger + dispatch.
	reg := dataset.NewRegistry()
	census := workload.CensusIncome(1, workload.CensusRows)
	if _, err := reg.Register("census", census, dataset.RegisterOptions{
		TotalBudget: 10,
		Ranges:      []dp.Range{workload.CensusLooseRange()},
	}); err != nil {
		log.Fatal(err)
	}
	srv := compman.NewServer(reg, compman.ServerConfig{WorkerAddrs: workerAddrs})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(sl) }()
	defer srv.Close()
	fmt.Printf("server on %s, %d workers\n", sl.Addr(), len(workerAddrs))

	// The analyst: only ever sees the wire protocol and private answers.
	client, err := compman.Dial(sl.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Query(&compman.Request{
		Dataset:      "census",
		Program:      &compman.ProgramSpec{Type: "mean", Col: 0},
		OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      1,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed private average age: %.2f (true %.2f)\n",
		resp.Output[0], workload.CensusTrueMean)
	fmt.Printf("computed across %d blocks on the worker pool, eps spent %.1f\n",
		resp.NumBlocks, resp.EpsilonSpent)

	rem, err := client.RemainingBudget("census")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remaining lifetime budget: %.1f\n", rem)
}
