GO ?= go

.PHONY: all build test race vet check fuzz bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check: vet race

# fuzz runs each fuzz target briefly; lengthen FUZZTIME for soak runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/sandbox -run xxx -fuzz FuzzReadResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sandbox -run xxx -fuzz FuzzReadRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataset -run xxx -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dp -run xxx -fuzz FuzzPercentile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dp -run xxx -fuzz FuzzAccountant -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeWorkRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeWorkResponse -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .
