GO ?= go

.PHONY: all build test race vet check fuzz bench bench-telemetry bench-wire bench-cache bench-tenant bench-fanout bench-obs fanout-race ledger-kill audit-kill prom-lint

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# ledger-kill runs the SIGKILL recovery matrix for the durable privacy
# ledger: child processes are killed at every fsync/rename boundary and at
# random instants, and recovery must never under-count acknowledged ε.
ledger-kill:
	$(GO) test -race -count=1 -run 'TestKill' ./internal/ledger

# audit-kill is the same matrix for the tamper-evident audit log: SIGKILL
# at every append/head-write boundary must leave a chain that verifies,
# with at most benign crash artifacts (torn tail, lagged head).
audit-kill:
	$(GO) test -race -count=1 -run 'TestKill' ./internal/telemetry/audit

# fanout-race runs the sharded-dispatch and scheduler tests under the race
# detector: concurrent block fan-out, straggler duplication, failover and
# EDF admission are the raciest paths in the tree.
fanout-race:
	$(GO) test -race -count=1 -run 'TestFanout|TestScheduler|TestServerOverload|TestServerDeadline|TestWorker' ./internal/compman

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector, plus dedicated passes of both kill matrices and the
# fan-out concurrency tests.
check: vet race fanout-race ledger-kill audit-kill

# fuzz runs each fuzz target briefly; lengthen FUZZTIME for soak runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/sandbox -run xxx -fuzz FuzzReadResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sandbox -run xxx -fuzz FuzzReadRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dataset -run xxx -fuzz FuzzReadCSV -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dp -run xxx -fuzz FuzzPercentile -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dp -run xxx -fuzz FuzzAccountant -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeWorkRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzDecodeWorkResponse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzWireEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/compman -run xxx -fuzz FuzzFingerprint -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ledger -run xxx -fuzz FuzzDecodeRecord -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# bench-telemetry measures instrumentation overhead on the query hot path
# (untraced vs metrics-only vs fully traced) and regenerates the
# checked-in report. Run on an idle machine; the experiment takes the best
# of three passes to filter scheduler noise.
bench-telemetry:
	$(GO) run ./cmd/gupt-bench -quick -exp telemetry -json BENCH_PR5.json

# bench-wire compares the legacy JSON wire against the binary framing on
# both compman paths (client round trips / DP queries, worker block
# shipping) and regenerates the checked-in report. Run on an idle machine.
bench-wire:
	$(GO) run ./cmd/gupt-bench -quick -exp wire -json BENCH_PR6.json

# bench-cache measures the noisy-answer cache: hit-path vs cold-path
# latency and cumulative ε over a repeat-heavy Zipf schedule with the
# cache on vs off, and regenerates the checked-in report.
bench-cache:
	$(GO) run ./cmd/gupt-bench -quick -exp cache -json BENCH_PR7.json

# bench-tenant measures the multi-tenant front door: authn + rate-limit +
# quota hot-path overhead versus tenancy off, and rejection throughput
# under a 95%-over-quota flood, and regenerates the checked-in report.
bench-tenant:
	$(GO) run ./cmd/gupt-bench -quick -exp tenant -json BENCH_PR8.json

# bench-fanout measures the sharded block executor: QPS / p99 (bucketed) /
# blocks-per-second over a 1->2->4 worker fleet with quantum-padded blocks,
# plus a deadline-carrying overload burst against a starved scheduler
# (expected: refusals with retry hints, zero late answers). Regenerates the
# checked-in report.
bench-fanout:
	$(GO) run ./cmd/gupt-bench -quick -exp fanout -json BENCH_PR9.json

# bench-obs measures what the query flight recorder, the ε burn-down
# plane, and the per-block fan-out spans add on top of the tracing
# baseline BENCH_PR5.json pinned, and regenerates the checked-in report.
bench-obs:
	$(GO) run ./cmd/gupt-bench -quick -exp obs -json BENCH_PR10.json

# prom-lint runs the exposition-format gates by name: the /metrics text
# must parse as valid Prometheus 0.0.4 and no raw duration may appear
# outside a bucketed histogram (§6.3), over the full metric registry.
prom-lint:
	$(GO) test -count=1 -run 'TestLint' ./internal/telemetry
