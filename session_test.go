package gupt

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestSessionPlanProportional(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	s := p.NewSession("census", 2)
	if err := s.Add(Query{
		Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}, BlockSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Query{
		Program: Variance{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 5625}}, BlockSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	alloc, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 2 {
		t.Fatalf("alloc = %v", alloc)
	}
	// Widths 150 vs 5625 → allocations in ratio 150:5625 = 1:37.5.
	ratio := alloc[1] / alloc[0]
	if math.Abs(ratio-37.5) > 0.01 {
		t.Errorf("allocation ratio = %v, want 37.5", ratio)
	}
	if got := alloc[0] + alloc[1]; math.Abs(got-2) > 1e-9 {
		t.Errorf("allocations sum to %v, want 2", got)
	}
	// Plan must not charge.
	rem, _ := p.RemainingBudget("census")
	if rem != 100 {
		t.Errorf("Plan charged the ledger: remaining %v", rem)
	}
}

func TestSessionRun(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	// Two equal-range queries split the budget evenly, so both stay
	// accurate at eps=2 each.
	s := p.NewSession("census", 4)
	_ = s.Add(Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}, Seed: 1})
	_ = s.Add(Query{Program: Median{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}, Seed: 2})
	results, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0] == nil || results[1] == nil {
		t.Fatalf("results = %v", results)
	}
	if math.Abs(results[0].Output[0]-40) > 15 {
		t.Errorf("session mean = %v", results[0].Output[0])
	}
	if math.Abs(results[1].Output[0]-40) > 15 {
		t.Errorf("session median = %v", results[1].Output[0])
	}
	// Charged exactly the session budget, once.
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-96) > 1e-9 {
		t.Errorf("remaining = %v, want 96", rem)
	}
	// Per-query epsilons sum to the session budget.
	if got := results[0].EpsilonSpent + results[1].EpsilonSpent; math.Abs(got-4) > 1e-9 {
		t.Errorf("per-query epsilons sum to %v, want 4", got)
	}
}

func TestSessionRunRefusedWhenBudgetShort(t *testing.T) {
	p := newCensusPlatform(t, 1, 0)
	s := p.NewSession("census", 5) // session wants more than the lifetime budget
	_ = s.Add(Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 150}}})
	if _, err := s.Run(context.Background()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	rem, _ := p.RemainingBudget("census")
	if rem != 1 {
		t.Errorf("refused session consumed budget: remaining %v", rem)
	}
}

func TestSessionAddValidation(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	s := p.NewSession("census", 1)
	cases := []struct {
		name string
		q    Query
	}{
		{"wrong dataset", Query{Dataset: "other", Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 1}}}},
		{"own epsilon", Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"own accuracy", Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Accuracy: &AccuracyGoal{Rho: 0.9, Confidence: 0.9}}},
		{"nil program", Query{OutputRanges: []Range{{Lo: 0, Hi: 1}}}},
		{"helper mode", Query{Program: Mean{Col: 0}, Mode: Helper}},
		{"range arity", Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}},
	}
	for _, c := range cases {
		if err := s.Add(c.q); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSessionEmpty(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	s := p.NewSession("census", 1)
	if _, err := s.Plan(); err == nil {
		t.Error("empty session planned")
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Error("empty session ran")
	}
}

func TestSessionUnknownDataset(t *testing.T) {
	p := New()
	s := p.NewSession("ghost", 1)
	_ = s.Add(Query{Program: Mean{Col: 0}, OutputRanges: []Range{{Lo: 0, Hi: 1}}})
	if _, err := s.Plan(); err == nil {
		t.Error("unknown dataset planned")
	}
}
