package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/ledger"
	"gupt/internal/telemetry"
)

// startGuptdWithLedger assembles the durable deployment guptd's main
// builds with -ledger-dir: registry, recovered ledger, compman server and
// admin endpoint sharing one telemetry registry.
func startGuptdWithLedger(t *testing.T, reg *dataset.Registry, dir string) (*compman.Client, *ledger.Ledger, string) {
	t.Helper()
	tel := telemetry.NewRegistry()
	led, err := ledger.Open(dir, ledger.Options{Sync: ledger.SyncBatched, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	if err := ledger.Attach(led, reg); err != nil {
		t.Fatal(err)
	}
	srv := compman.NewServer(reg, compman.ServerConfig{Telemetry: tel})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	t.Cleanup(func() { srv.Close() })

	al, stopAdmin, err := serveAdmin("127.0.0.1:0", newAdminHandler(tel, reg, led, srv, nil, ""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopAdmin)

	client, err := compman.Dial(sl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, led, "http://" + al.Addr().String()
}

// The acceptance walk for the durable ledger: analyst queries spend ε
// through the full protocol path, the platform "crashes" (the process
// state is abandoned without any graceful flush), and a rebuilt deployment
// over the same ledger directory must refuse exactly the budget the first
// life acknowledged — a restart is not a budget reset.
func TestLedgerSurvivesPlatformRestart(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("age\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d\n", 30+i%10)
	}
	csv := writeCSV(t, sb.String())
	dir := t.TempDir()

	newReg := func() *dataset.Registry {
		reg := dataset.NewRegistry()
		if err := registerSpec(reg, "census="+csv+":budget=2:header"); err != nil {
			t.Fatal(err)
		}
		return reg
	}

	// First life: spend 1.0 of the 2.0 budget over the wire.
	client, _, admin := startGuptdWithLedger(t, newReg(), dir)
	mean := func(c *compman.Client, eps float64) (*compman.Response, error) {
		return c.Query(&compman.Request{
			Dataset:      "census",
			Program:      &compman.ProgramSpec{Type: "mean"},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 100}},
			Epsilon:      eps,
			Seed:         7,
		})
	}
	for i := 0; i < 2; i++ {
		if _, err := mean(client, 0.5); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if rem, err := client.RemainingBudget("census"); err != nil || rem != 1.0 {
		t.Fatalf("remaining = %v (%v), want 1.0", rem, err)
	}

	// The admin /ledger view must reflect a live, synced ledger.
	resp, err := http.Get(admin + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	var st telemetry.LedgerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Enabled || st.Records == 0 || st.Datasets != 1 {
		t.Fatalf("/ledger = %+v, want enabled with records and 1 dataset", st)
	}
	if st.SyncedRecords < st.Records {
		t.Fatalf("/ledger shows unsynced acknowledged charges: synced %d < records %d", st.SyncedRecords, st.Records)
	}

	// Crash: no graceful shutdown, no SaveBudgets. (Process-level SIGKILL
	// durability is proven by the internal/ledger kill matrix; here the
	// platform layers above it are exercised end to end.)

	// Second life over the same directory.
	client2, led2, _ := startGuptdWithLedger(t, newReg(), dir)
	if rem, err := client2.RemainingBudget("census"); err != nil || rem != 1.0 {
		t.Fatalf("remaining after restart = %v (%v), want 1.0 — restart must not refund spent ε", rem, err)
	}
	// The surviving budget is spendable once; then the books are closed.
	if _, err := mean(client2, 1.0); err != nil {
		t.Fatalf("spending the surviving budget: %v", err)
	}
	if _, err := mean(client2, 0.5); err == nil {
		t.Fatal("overdraft after restart must refuse")
	}
	if got := led2.Spent("census"); got != 2.0 {
		t.Fatalf("ledger spent = %v, want 2.0", got)
	}

	// Third life: the dataset must come back exhausted.
	client3, _, _ := startGuptdWithLedger(t, newReg(), dir)
	if rem, err := client3.RemainingBudget("census"); err != nil || rem != 0 {
		t.Fatalf("remaining after exhaustion = %v (%v), want 0", rem, err)
	}
	if _, err := mean(client3, 0.1); err == nil {
		t.Fatal("exhausted dataset must refuse after restart")
	}
}

// Datasets registered at runtime through the wire protocol bind to the
// ledger via the registration hook and are just as durable.
func TestLedgerCoversRuntimeRegistration(t *testing.T) {
	dir := t.TempDir()
	reg := dataset.NewRegistry()
	seed := writeCSV(t, "x\n1\n2\n3\n4\n5\n6\n7\n8\n")
	if err := registerSpec(reg, "boot="+seed+":budget=1:header"); err != nil {
		t.Fatal(err)
	}
	client, led, _ := startGuptdWithLedger(t, reg, dir)

	rows := make([][]float64, 60)
	for i := range rows {
		rows[i] = []float64{float64(i)}
	}
	if err := client.RegisterDataset(&compman.RegisterSpec{
		Name:        "runtime",
		Columns:     []string{"x"},
		Rows:        rows,
		TotalBudget: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(&compman.Request{
		Dataset:      "runtime",
		Program:      &compman.ProgramSpec{Type: "mean"},
		OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 60}},
		Epsilon:      1.25,
		Seed:         3,
	}); err != nil {
		t.Fatal(err)
	}
	if got := led.Spent("runtime"); got != 1.25 {
		t.Fatalf("ledger spent = %v, want 1.25", got)
	}
	led.Close()

	rec, err := ledger.Recover(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Datasets["runtime"].Spent; got != 1.25 {
		t.Fatalf("recovered runtime spent = %v, want 1.25", got)
	}
}
