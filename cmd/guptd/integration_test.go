package main

import (
	"errors"
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/faultinject"
	"gupt/internal/sandbox"
)

// End-to-end crash test over real sockets: a guptd-shaped server fans a
// query out to a worker daemon, and the worker is killed mid-query. The
// analyst must get a well-formed, budget-preserving error — never a hang, a
// torn response, or a refund — and the operator stats must show the abort.
func TestWorkerKilledMidQuery(t *testing.T) {
	// Dataset registered through guptd's own -dataset parsing path.
	var sb strings.Builder
	sb.WriteString("age\n")
	for i := 0; i < 600; i++ {
		sb.WriteString("40\n")
	}
	path := writeCSV(t, sb.String())
	reg := dataset.NewRegistry()
	const totalBudget = 2.0
	if err := registerSpec(reg, "census="+path+":budget=2:header"); err != nil {
		t.Fatal(err)
	}

	// Worker daemon whose chambers start slowly (100ms per block), leaving a
	// window to kill it while the query is in flight.
	worker := compman.NewWorker(compman.WorkerConfig{
		ChamberWrapper: func(inner sandbox.Chamber) sandbox.Chamber {
			return &faultinject.Chamber{
				Inner: inner,
				Schedule: &faultinject.Schedule{
					Plan:   []faultinject.Kind{faultinject.SlowStart},
					SlowBy: 100 * time.Millisecond,
				},
				OutputDims: 1,
			}
		},
	})
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go worker.Serve(wl)

	// The server, configured as guptd would be for cluster execution, with
	// the quality guard that turns a dead pool into an abort.
	srv := compman.NewServer(reg, compman.ServerConfig{
		WorkerAddrs: []string{wl.Addr().String()},
		MaxFailFrac: 0.5,
	})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	t.Cleanup(func() { srv.Close() })

	client, err := compman.Dial(sl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	// Fire the query, then kill the worker while its blocks execute.
	const eps = 1.0
	type reply struct {
		resp *compman.Response
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := client.Query(&compman.Request{
			Dataset:      "census",
			Program:      &compman.ProgramSpec{Type: "mean", Col: 0},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
			Epsilon:      eps,
			BlockSize:    30, // 600 rows → 20 blocks ≈ 2s of slow-started work
		})
		done <- reply{resp, err}
	}()

	time.Sleep(250 * time.Millisecond) // a few blocks in
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}

	var r reply
	select {
	case r = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query hung after worker death")
	}
	if r.err == nil {
		t.Fatalf("query succeeded with a dead worker: %+v", r.resp)
	}
	var qe *compman.QueryError
	if !errors.As(r.err, &qe) {
		t.Fatalf("error %T is not a well-formed *QueryError: %v", r.err, r.err)
	}
	if qe.EpsilonCharged != eps {
		t.Errorf("EpsilonCharged = %v, want %v (worker death must not refund)", qe.EpsilonCharged, eps)
	}

	rem, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-(totalBudget-eps)) > 1e-9 {
		t.Errorf("remaining budget %v, want %v", rem, totalBudget-eps)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueriesAborted != 1 {
		t.Errorf("QueriesAborted = %d, want 1", stats.QueriesAborted)
	}
	if stats.QueriesFailed != 1 {
		t.Errorf("QueriesFailed = %d, want 1", stats.QueriesFailed)
	}
	if stats.QueriesOK != 0 {
		t.Errorf("QueriesOK = %d, want 0", stats.QueriesOK)
	}
}
