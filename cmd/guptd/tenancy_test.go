package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/telemetry"
	"gupt/internal/tenant"
)

// startTenantGuptd assembles the tenancy-enabled deployment guptd's main
// builds with -tenancy -admin-token: a compman server with a tenant
// registry and a token-gated admin endpoint carrying the /tenants routes.
func startTenantGuptd(t *testing.T, reg *dataset.Registry, tenants *tenant.Registry, token string) (string, string) {
	t.Helper()
	tel := telemetry.NewRegistry()
	srv := compman.NewServer(reg, compman.ServerConfig{Telemetry: tel, Tenants: tenants})
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	t.Cleanup(func() { srv.Close() })

	al, stopAdmin, err := serveAdmin("127.0.0.1:0", newAdminHandler(tel, reg, nil, srv, tenants, token))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopAdmin)
	return sl.Addr().String(), al.Addr().String()
}

func censusRegistry(t *testing.T) *dataset.Registry {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("age\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d\n", 30+i%10)
	}
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "census="+writeCSV(t, sb.String())+":budget=10:header"); err != nil {
		t.Fatal(err)
	}
	return reg
}

// adminDo issues one admin-plane request with an optional token.
func adminDo(t *testing.T, method, url, token string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestAdminTokenGate: with -admin-token set, EVERY route the admin plane
// serves — enumerated from the handler's own route table via
// telemetry.AdminRoutePatterns, so a newly added route cannot ship
// ungated — refuses without the token and with a wrong token (uniform
// 401) and answers with it. /healthz alone stays open for load-balancer
// probes.
func TestAdminTokenGate(t *testing.T) {
	const token = "sekrit"
	tenants, err := tenant.Load(filepath.Join(t.TempDir(), "tenants.json"))
	if err != nil {
		t.Fatal(err)
	}
	reg := censusRegistry(t)
	_, admin := startTenantGuptd(t, reg, tenants, token)
	base := "http://" + admin

	patterns := telemetry.AdminRoutePatterns(newAdminConfig(telemetry.NewRegistry(), reg, nil, nil, tenants, token))
	// The enumeration is only trustworthy if it still carries the full
	// surface; a refactor that drops routes from the table would otherwise
	// silently shrink this test.
	for _, want := range []string{
		"/metrics", "/traces", "/queries", "/budget", "/flight", "/workers",
		"/ledger", "/cache", "/datasets", "/healthz", "/debug/pprof/",
		"/tenants", "/tenants/grant", "/tenants/quota", "/tenants/limits",
	} {
		found := false
		for _, p := range patterns {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("route table lost %s: %v", want, patterns)
		}
	}

	for _, path := range patterns {
		if path == "/healthz" {
			if code, _ := adminDo(t, http.MethodGet, base+path, "", nil); code != http.StatusOK {
				t.Errorf("/healthz must stay open, got %d", code)
			}
			continue
		}
		if code, _ := adminDo(t, http.MethodGet, base+path, "", nil); code != http.StatusUnauthorized {
			t.Errorf("GET %s without token = %d, want 401", path, code)
		}
		if code, _ := adminDo(t, http.MethodGet, base+path, "wrong", nil); code != http.StatusUnauthorized {
			t.Errorf("GET %s with wrong token = %d, want 401", path, code)
		}
		// With the token the route must answer — 200, or 405 for the
		// POST-only tenant mutations — never 401. The profilers get a
		// 1-second bound so the sweep stays fast.
		fetch := path
		switch path {
		case "/debug/pprof/profile", "/debug/pprof/trace":
			fetch = path + "?seconds=1"
		}
		if code, _ := adminDo(t, http.MethodGet, base+fetch, token, nil); code == http.StatusUnauthorized {
			t.Errorf("GET %s with correct token still 401", path)
		}
	}

	// The Bearer carrier works too.
	req, _ := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("Bearer carrier = %d, want 200", resp.StatusCode)
	}
}

// TestTenantAdminEndToEnd is the two-tenant demo from the acceptance
// criteria, driven entirely through the operator HTTP surface: create two
// tenants over /tenants, grant and quota them, then query as each —
// tenant isolation, quota refusal, and registry persistence all observed
// from the outside.
func TestTenantAdminEndToEnd(t *testing.T) {
	const token = "op-token"
	tenantsFile := filepath.Join(t.TempDir(), "tenants.json")
	tenants, err := tenant.Load(tenantsFile)
	if err != nil {
		t.Fatal(err)
	}
	serverAddr, admin := startTenantGuptd(t, censusRegistry(t), tenants, token)
	base := "http://" + admin

	// /tenants is token-gated like everything else.
	if code, _ := adminDo(t, http.MethodGet, base+"/tenants", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("/tenants without token = %d, want 401", code)
	}

	// Create alice and bob; the raw key appears exactly once, in the reply.
	keys := map[string]string{}
	for _, id := range []string{"alice", "bob"} {
		code, body := adminDo(t, http.MethodPost, base+"/tenants", token, []byte(`{"id":"`+id+`"}`))
		if code != http.StatusOK {
			t.Fatalf("create %s = %d: %s", id, code, body)
		}
		var out struct{ ID, APIKey string }
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != id || !strings.HasPrefix(out.APIKey, "gupt_") {
			t.Fatalf("create %s returned %+v", id, out)
		}
		keys[id] = out.APIKey
	}
	for _, id := range []string{"alice", "bob"} {
		if code, body := adminDo(t, http.MethodPost, base+"/tenants/grant", token,
			[]byte(`{"id":"`+id+`","dataset":"census"}`)); code != http.StatusOK {
			t.Fatalf("grant %s = %d: %s", id, code, body)
		}
	}
	// Alice gets a tight quota; bob rides the global budget.
	if code, body := adminDo(t, http.MethodPost, base+"/tenants/quota", token,
		[]byte(`{"id":"alice","dataset":"census","epsilon":0.5}`)); code != http.StatusOK {
		t.Fatalf("quota = %d: %s", code, body)
	}

	dial := func(key string) *compman.Client {
		c, err := compman.Dial(serverAddr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		c.SetAPIKey(key)
		return c
	}
	mean := func(c *compman.Client, eps float64) (*compman.Response, error) {
		return c.Query(&compman.Request{
			Dataset:      "census",
			Program:      &compman.ProgramSpec{Type: "mean"},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 100}},
			Epsilon:      eps,
			Seed:         7,
		})
	}

	alice, bob := dial(keys["alice"]), dial(keys["bob"])
	resp, err := mean(alice, 0.5)
	if err != nil {
		t.Fatalf("alice in-quota query: %v", err)
	}
	if resp.Tenant != "alice" {
		t.Fatalf("response tenant = %q, want alice", resp.Tenant)
	}
	// Alice is now at her ε ceiling; bob is not affected.
	if _, err := mean(alice, 0.5); err == nil {
		t.Fatal("alice's over-quota query must refuse")
	}
	if _, err := mean(bob, 0.5); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
	// An unauthenticated client stays outside.
	anon, err := compman.Dial(serverAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if _, err := mean(anon, 0.5); err == nil {
		t.Fatal("keyless client admitted to a tenancy-enabled server")
	}

	// /tenants lists both principals with their live spend, no key material.
	code, body := adminDo(t, http.MethodGet, base+"/tenants", token, nil)
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	if strings.Contains(string(body), "gupt_") || strings.Contains(string(body), "keyHash") {
		t.Fatalf("tenant list leaks key material: %s", body)
	}
	var infos []tenant.Info
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listed %d tenants, want 2", len(infos))
	}

	// Every mutation persisted: a fresh registry loaded from the same file
	// authenticates the same keys and carries the same grants and quotas.
	reloaded, err := tenant.Load(tenantsFile)
	if err != nil {
		t.Fatal(err)
	}
	for id, key := range keys {
		got, err := reloaded.Authenticate(key)
		if err != nil || got != id {
			t.Fatalf("reloaded registry: Authenticate(%s key) = %q, %v", id, got, err)
		}
	}
	if !reloaded.Authorized("alice", "census") {
		t.Fatal("reloaded registry lost alice's census grant")
	}
}
