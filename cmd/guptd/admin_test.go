package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/telemetry"
)

// startGuptd assembles the same server+admin pair guptd's main builds:
// a compman server and the admin HTTP endpoint sharing one telemetry
// registry, both on real OS sockets bound to :0.
func startGuptd(t *testing.T, reg *dataset.Registry, cfg compman.ServerConfig) (*compman.Client, string) {
	t.Helper()
	tel := telemetry.NewRegistry()
	cfg.Telemetry = tel
	srv := compman.NewServer(reg, cfg)
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(sl)
	t.Cleanup(func() { srv.Close() })

	al, stopAdmin, err := serveAdmin("127.0.0.1:0", newAdminHandler(tel, reg, nil, srv, nil, ""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopAdmin)

	client, err := compman.Dial(sl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, "http://" + al.Addr().String()
}

func adminGet(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// The acceptance-criteria walk: a scripted query sequence against a real
// guptd-shaped deployment, with every admin view checked against it —
// block-outcome counters, the bucketed latency histogram, per-dataset
// remaining budget, refusal counts, and pprof availability.
func TestAdminEndpointAgreesWithQuerySequence(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("age\n")
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "%d\n", 30+i%10)
	}
	reg := dataset.NewRegistry()
	const totalBudget = 2.0
	if err := registerSpec(reg, "census="+writeCSV(t, sb.String())+":budget=2:header"); err != nil {
		t.Fatal(err)
	}
	client, admin := startGuptd(t, reg, compman.ServerConfig{})

	mean := func(eps float64) (*compman.Response, error) {
		return client.Query(&compman.Request{
			Dataset:      "census",
			Program:      &compman.ProgramSpec{Type: "mean"},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 100}},
			Epsilon:      eps,
			Seed:         7,
		})
	}

	// Scripted sequence: two successful queries (ε 0.5 each), then one
	// refusal (ε 1.5 > the 1.0 remaining).
	var blocks int
	for i := 0; i < 2; i++ {
		resp, err := mean(0.5)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		blocks += resp.NumBlocks
	}
	if _, err := mean(1.5); err == nil {
		t.Fatal("over-budget query must refuse")
	}

	code, _ := adminGet(t, admin, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	code, body := adminGet(t, admin, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if got := snap.Counters["compman.queries_ok"]; got != 2 {
		t.Fatalf("queries_ok = %d, want 2", got)
	}
	if got := snap.Counters["compman.budget_refusals"]; got != 1 {
		t.Fatalf("budget_refusals = %d, want 1", got)
	}
	if got := snap.Counters["budget.refusals.census"]; got != 1 {
		t.Fatalf("per-dataset refusals = %d, want 1", got)
	}
	if got := snap.Counters["engine.blocks_ok"]; got != int64(blocks) {
		t.Fatalf("engine.blocks_ok = %d, want %d (sum of NumBlocks)", got, blocks)
	}
	if got := snap.Counters["sandbox.inprocess.spawns"]; got != int64(blocks) {
		t.Fatalf("chamber spawns = %d, want %d", got, blocks)
	}
	lat := snap.Histograms["compman.query_latency_millis"]
	if lat.Count != 2 {
		t.Fatalf("latency histogram count = %d, want 2 (ok queries only)", lat.Count)
	}
	// Each lifecycle stage of the two successful runs left one bucketed
	// span observation.
	for _, stage := range []string{"admission", "budget", "partition", "blocks", "aggregation", "noising", "release"} {
		if got := snap.Histograms["trace.stage."+stage+".millis"].Count; got < 2 {
			t.Fatalf("stage %q observed %d times, want >= 2", stage, got)
		}
	}

	code, body = adminGet(t, admin, "/datasets")
	if code != http.StatusOK {
		t.Fatalf("/datasets = %d", code)
	}
	var stats []telemetry.DatasetStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Name != "census" {
		t.Fatalf("datasets = %+v", stats)
	}
	ds := stats[0]
	if ds.TotalEpsilon != totalBudget || math.Abs(ds.SpentEpsilon-1.0) > 1e-9 || math.Abs(ds.RemainingEpsilon-1.0) > 1e-9 {
		t.Fatalf("budget view = %+v, want total 2 spent 1 remaining 1", ds)
	}
	if ds.Queries != 2 || ds.Refusals != 1 {
		t.Fatalf("counts = %+v, want 2 queries / 1 refusal", ds)
	}

	// Cross-check with the analyst-visible budget op.
	rem, err := client.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-ds.RemainingEpsilon) > 1e-9 {
		t.Fatalf("admin remaining %v != protocol remaining %v", ds.RemainingEpsilon, rem)
	}

	if code, _ := adminGet(t, admin, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// The admin endpoint must answer while a query is executing: /metrics and
// /healthz are hit mid-flight (the per-block quantum keeps the query in
// the engine long enough), and the wire OpStats snapshot must agree with
// /metrics afterwards.
func TestAdminRespondsDuringQuery(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("v\n")
	for i := 0; i < 300; i++ {
		sb.WriteString("1\n")
	}
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "d="+writeCSV(t, sb.String())+":budget=10:header"); err != nil {
		t.Fatal(err)
	}
	// 20ms quantum × ~10 blocks serialized over few cores keeps the query
	// in flight for a comfortably observable window.
	client, admin := startGuptd(t, reg, compman.ServerConfig{DefaultQuantum: 20 * time.Millisecond})

	done := make(chan error, 1)
	go func() {
		_, err := client.Query(&compman.Request{
			Dataset:      "d",
			Program:      &compman.ProgramSpec{Type: "mean"},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 2}},
			Epsilon:      1,
		})
		done <- err
	}()

	// Poll /metrics until the query is visibly in flight, proving the admin
	// plane serves while the query plane works.
	deadline := time.After(5 * time.Second)
	finished := false
	for sawInflight := false; !sawInflight && !finished; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Log("query finished before in-flight observation; counters still checked below")
			finished = true
		case <-deadline:
			t.Fatal("query never became visible in /metrics")
		default:
			code, body := adminGet(t, admin, "/metrics")
			if code != http.StatusOK {
				t.Fatalf("/metrics during query = %d", code)
			}
			var snap telemetry.Snapshot
			if err := json.Unmarshal(body, &snap); err != nil {
				t.Fatal(err)
			}
			if snap.Gauges["compman.queries_inflight"] > 0 {
				if code, _ := adminGet(t, admin, "/healthz"); code != http.StatusOK {
					t.Fatalf("/healthz during query = %d", code)
				}
				sawInflight = true
			}
		}
	}
	if !finished {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("query did not finish")
		}
	}

	// The wire stats snapshot and /metrics are views of the same atomics.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	_, body := adminGet(t, admin, "/metrics")
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if stats.QueriesOK != snap.Counters["compman.queries_ok"] || stats.QueriesOK != 1 {
		t.Fatalf("OpStats ok=%d, /metrics ok=%d, want both 1", stats.QueriesOK, snap.Counters["compman.queries_ok"])
	}
	if snap.Gauges["compman.queries_inflight"] != 0 {
		t.Fatalf("inflight gauge = %d after completion", snap.Gauges["compman.queries_inflight"])
	}
}

// Concurrent admin reads during concurrent queries, for the race detector.
func TestAdminConcurrentWithQueries(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("v\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("1\n")
	}
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "d="+writeCSV(t, sb.String())+":budget=100:header"); err != nil {
		t.Fatal(err)
	}
	client, admin := startGuptd(t, reg, compman.ServerConfig{})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if code, _ := adminGet(t, admin, "/metrics"); code != http.StatusOK {
					t.Errorf("/metrics = %d", code)
					return
				}
				adminGet(t, admin, "/datasets")
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if _, err := client.Query(&compman.Request{
			Dataset:      "d",
			Program:      &compman.ProgramSpec{Type: "mean"},
			OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 2}},
			Epsilon:      0.1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
