package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	"gupt/internal/tenant"
)

// tenantHandlers builds the /tenants operator routes. They live on the
// admin plane (behind the -admin-token gate, never the analyst wire):
//
//	GET  /tenants        sanitized tenant list (grants, quotas, live spend
//	                     — key hashes and raw keys never appear)
//	POST /tenants        {"id": "..."} creates a tenant; the response
//	                     carries the raw API key, the only time it exists
//	POST /tenants/grant  {"id": "...", "dataset": "..."} ("*" = all)
//	POST /tenants/quota  {"id": "...", "dataset": "...", "epsilon": F}
//	POST /tenants/limits {"id": "...", "qps": F, "burst": N, "maxInflight": N}
//
// Every mutation persists the registry to its -tenants-file before
// answering, so an acknowledged change survives a restart.
func tenantHandlers(tenants *tenant.Registry) map[string]http.Handler {
	type grantReq struct {
		ID      string `json:"id"`
		Dataset string `json:"dataset"`
	}
	type quotaReq struct {
		ID      string  `json:"id"`
		Dataset string  `json:"dataset"`
		Epsilon float64 `json:"epsilon"`
	}
	type limitsReq struct {
		ID          string  `json:"id"`
		QPS         float64 `json:"qps"`
		Burst       int     `json:"burst"`
		MaxInflight int     `json:"maxInflight"`
	}

	decode := func(w http.ResponseWriter, req *http.Request, v any) bool {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return false
		}
		if err := json.NewDecoder(req.Body).Decode(v); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return false
		}
		return true
	}
	// persist saves the registry after a mutation; a failed save fails the
	// request (the change is live in memory but the operator must know it
	// will not survive a restart).
	persist := func(w http.ResponseWriter) bool {
		if err := tenants.Save(); err != nil {
			log.Printf("persisting tenants: %v", err)
			http.Error(w, fmt.Sprintf("applied but not persisted: %v", err), http.StatusInternalServerError)
			return false
		}
		return true
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}

	h := make(map[string]http.Handler)
	h["/tenants"] = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.Method {
		case http.MethodGet:
			writeJSON(w, tenants.List())
		case http.MethodPost:
			var body struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
				http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
				return
			}
			key, err := tenants.Create(body.ID)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if !persist(w) {
				return
			}
			// The raw key's single appearance; store it client-side.
			writeJSON(w, map[string]string{"id": body.ID, "apiKey": key})
		default:
			http.Error(w, "GET or POST required", http.StatusMethodNotAllowed)
		}
	})
	h["/tenants/grant"] = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var body grantReq
		if !decode(w, req, &body) {
			return
		}
		if err := tenants.Grant(body.ID, body.Dataset); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !persist(w) {
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})
	h["/tenants/quota"] = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var body quotaReq
		if !decode(w, req, &body) {
			return
		}
		if err := tenants.SetQuota(body.ID, body.Dataset, body.Epsilon); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !persist(w) {
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})
	h["/tenants/limits"] = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var body limitsReq
		if !decode(w, req, &body) {
			return
		}
		if err := tenants.SetLimits(body.ID, body.QPS, body.Burst, body.MaxInflight); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !persist(w) {
			return
		}
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return h
}
