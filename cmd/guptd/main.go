// Command guptd is the hosted GUPT service: the trusted computation manager
// plus dataset manager behind a TCP endpoint. The data owner registers CSV
// datasets at startup; analysts connect with gupt-cli (or any client
// speaking the binary framed protocol of internal/compman) and can only
// ever obtain differentially private answers.
//
// Usage:
//
//	guptd -listen 127.0.0.1:7113 \
//	      -dataset census=./census.csv:budget=10:aged=0.1:header \
//	      -dataset ads=./ads.csv:budget=5
//
// Each -dataset flag is name=path followed by colon-separated options:
//
//	budget=F   lifetime privacy budget (required)
//	aged=F     fraction of rows carved into the aged, non-private sample
//	header     the CSV file has a header row
//	quantum=D  per-block timing quantum for queries on this server
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/ledger"
	"gupt/internal/telemetry"
	"gupt/internal/telemetry/audit"
	"gupt/internal/tenant"
)

type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, ", ") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	log.SetPrefix("guptd: ")
	log.SetFlags(log.LstdFlags)

	var (
		listen       = flag.String("listen", "127.0.0.1:7113", "address to listen on")
		adminAddr    = flag.String("admin-addr", "", "operator admin HTTP endpoint (/metrics, /healthz, /datasets, /debug/pprof); empty disables")
		traceLog     = flag.Bool("unsafe-trace-log", false, "log per-query lifecycle traces with raw stage durations; UNSAFE where analysts can read logs (see SECURITY.md)")
		traceSlower  = flag.Duration("trace-threshold", 0, "with -unsafe-trace-log, only log queries at least this slow (0 logs all)")
		traceBufSize = flag.Int("trace-buffer", 0, "completed-trace ring capacity served at /traces (0 = default 256)")
		flightSize   = flag.Int("flight-records", 0, "flight-recorder ring capacity served at /flight and rendered by 'gupt-cli top' (0 = default 128)")
		auditDir     = flag.String("audit-dir", "", "tamper-evident audit log directory (hash-chained query records, verifiable with 'gupt-cli audit verify'); empty disables")
		auditMax     = flag.Int64("audit-max-bytes", 0, "rotate audit segments at this size (0 = default 4MiB)")
		auditFsync   = flag.Bool("audit-fsync", false, "fsync the audit log after every record (durability over throughput)")
		quantum      = flag.Duration("quantum", 0, "per-block timing quantum applied to all queries (0 disables)")
		scratch      = flag.String("scratch", "", "root for subprocess chamber scratch dirs (default: system temp)")
		state        = flag.String("state", "", "legacy budget state file; superseded by -ledger-dir")
		ledgerDir    = flag.String("ledger-dir", "", "durable privacy-ledger directory (write-ahead log + snapshots); spent budget survives crashes")
		ledgerSync   = flag.String("ledger-sync", "batched", "ledger fsync policy: 'record' (fsync every charge) or 'batched' (group commit)")
		ledgerFlush  = flag.Duration("ledger-flush", 2*time.Millisecond, "group-commit accumulation window for -ledger-sync=batched")
		workers      = flag.String("workers", "", "comma-separated gupt-worker addresses for cluster execution")
		workerConns  = flag.Int("worker-conns", 1, "concurrent block exchanges per worker host; engine parallelism is workers x this")
		straggler    = flag.Duration("straggler-after", 0, "duplicate a block to the next-ranked worker when its home worker is this late; first result wins (0 disables)")
		maxConc      = flag.Int("max-concurrent", 0, "deadline-aware scheduler: queries executing at once; overflow queues earliest-deadline-first (0 disables scheduling)")
		maxQueue     = flag.Int("max-queue", 0, "scheduler wait-queue bound; arrivals past it are refused with a retry hint (0 = 4x max-concurrent)")
		maxPerDs     = flag.Int("max-per-dataset", 0, "scheduler cap on concurrent queries per dataset (0 = no cap)")
		maxPerTen    = flag.Int("max-per-tenant", 0, "scheduler cap on concurrent queries per tenant (0 = no cap)")
		idle         = flag.Duration("idle", 0, "disconnect clients idle for this long (0 disables)")
		blockTimeout = flag.Duration("block-timeout", 0, "per-block execution deadline; overruns are substituted (0 disables)")
		queryTimeout = flag.Duration("query-timeout", 0, "whole-query deadline; overruns abort with budget consumed (0 disables)")
		retries      = flag.Int("retries", 0, "engine re-runs after a post-charge failure (never re-charges)")
		maxFailFrac  = flag.Float64("max-fail-frac", 0, "abort queries when more than this fraction of blocks was substituted (0 disables)")
		cacheEntries = flag.Int("cache-entries", 1024, "noisy-answer cache capacity: repeat queries are re-served their published answer at zero extra ε (0 disables)")
		cacheTTL     = flag.Duration("cache-ttl", 10*time.Minute, "expire cached answers after this long (0 keeps them until evicted)")
		tenancy      = flag.Bool("tenancy", false, "require tenant API keys: authenticate, authorize, rate-limit, and quota every request (see -tenants-file)")
		tenantsFile  = flag.String("tenants-file", "", "tenant registry file (JSON; created on first 'tenant create'); empty with -tenancy keeps tenants in memory only")
		adminToken   = flag.String("admin-token", "", "shared secret gating the admin HTTP endpoint (all routes except /healthz); empty leaves it open")
		datasets     datasetFlags
	)
	flag.Var(&datasets, "dataset", "dataset spec name=path[:budget=F][:aged=F][:header] (repeatable)")
	flag.Parse()

	if len(datasets) == 0 {
		fmt.Fprintln(os.Stderr, "guptd: at least one -dataset is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := dataset.NewRegistry()
	for _, spec := range datasets {
		if err := registerSpec(reg, spec); err != nil {
			log.Fatalf("dataset %q: %v", spec, err)
		}
	}

	if *state != "" && *ledgerDir == "" {
		if _, err := os.Stat(*state); err == nil {
			if err := reg.RestoreBudgets(*state); err != nil {
				log.Fatalf("restoring budget ledger: %v", err)
			}
			log.Printf("restored budget ledger from %s", *state)
		}
	}

	var workerAddrs []string
	if *workers != "" {
		workerAddrs = strings.Split(*workers, ",")
	}

	// Tenant registry: the multi-tenant front door's principal database.
	// Nil keeps the exact single-tenant behavior of prior releases.
	var tenants *tenant.Registry
	if *tenancy {
		var err error
		tenants, err = tenant.Load(*tenantsFile)
		if err != nil {
			log.Fatalf("loading tenant registry: %v", err)
		}
		if *tenantsFile == "" {
			log.Print("WARNING: -tenancy without -tenants-file keeps tenant definitions in memory only; they will not survive a restart")
		}
		log.Printf("tenancy enabled: %d tenant(s) loaded; every request requires an API key", len(tenants.List()))
	} else if *tenantsFile != "" {
		log.Print("WARNING: -tenants-file is ignored without -tenancy")
	}

	tel := telemetry.NewRegistry()

	// Durable privacy ledger: recover spent budget from the write-ahead
	// log, then route every future charge through it (log-before-charge).
	var led *ledger.Ledger
	if *ledgerDir != "" {
		if *state != "" {
			log.Printf("-state is superseded by -ledger-dir; skipping the legacy state-file restore")
		}
		var policy ledger.SyncPolicy
		switch *ledgerSync {
		case "record":
			policy = ledger.SyncEveryRecord
		case "batched":
			policy = ledger.SyncBatched
		default:
			log.Fatalf("-ledger-sync must be 'record' or 'batched', got %q", *ledgerSync)
		}
		var err error
		led, err = ledger.Open(*ledgerDir, ledger.Options{
			Sync:          policy,
			FlushInterval: *ledgerFlush,
			Telemetry:     tel,
			Logger:        log.Default(),
		})
		if err != nil {
			log.Fatalf("opening privacy ledger: %v", err)
		}
		if err := ledger.Attach(led, reg); err != nil {
			log.Fatalf("attaching privacy ledger: %v", err)
		}
		rec := led.Recovered()
		log.Printf("privacy ledger %s: recovered %d dataset(s), %d WAL record(s), lastSeq %d (sync=%s)",
			*ledgerDir, len(rec.Datasets), rec.WALRecords, rec.LastSeq, policy)
		if rec.TornTail {
			log.Printf("privacy ledger: truncated a torn final record (crash mid-append); spent budget is intact")
		}
		// Replay per-tenant balances into the quota ledger. Tenant-attributed
		// WAL records with tenancy off — or records naming a tenant the
		// registry no longer knows — fail closed: serving anyway would let
		// spent quota silently reset to zero.
		for name, ds := range rec.Datasets {
			if len(ds.TenantSpent) == 0 {
				continue
			}
			if tenants == nil {
				log.Fatalf("ledger %s: dataset %q has tenant-attributed spend but tenancy is off; restart with -tenancy (and the original -tenants-file)", *ledgerDir, name)
			}
			if err := tenants.SeedFromRecovery(name, ds.TenantSpent); err != nil {
				log.Fatalf("ledger %s: replaying tenant balances for dataset %q: %v", *ledgerDir, name, err)
			}
		}
	}
	statePath := *state
	if led != nil {
		statePath = "" // the WAL is authoritative; don't double-journal
	}

	// Tamper-evident audit log: every settled query and session appends a
	// hash-chained record. Opening recovers the chain tip (and truncates a
	// torn tail from a crash mid-append) before any new record is written.
	var alog *audit.Log
	if *auditDir != "" {
		var err error
		alog, err = audit.Open(*auditDir, audit.Options{MaxBytes: *auditMax, Fsync: *auditFsync})
		if err != nil {
			log.Fatalf("opening audit log: %v", err)
		}
		log.Printf("audit log %s: chain at seq %d (fsync=%v); verify with 'gupt-cli audit verify -dir %s'",
			*auditDir, alog.LastSeq(), *auditFsync, *auditDir)
	}

	cfg := compman.ServerConfig{
		DefaultQuantum:     *quantum,
		ScratchRoot:        *scratch,
		StatePath:          statePath,
		WorkerAddrs:        workerAddrs,
		IdleTimeout:        *idle,
		BlockTimeout:       *blockTimeout,
		QueryTimeout:       *queryTimeout,
		MaxQueryRetries:    *retries,
		MaxFailFrac:        *maxFailFrac,
		Logger:             log.Default(),
		Telemetry:          tel,
		Audit:              alog,
		TraceBufferSize:    *traceBufSize,
		FlightRecorderSize: *flightSize,
		CacheEntries:       *cacheEntries,
		CacheTTL:           *cacheTTL,
		Tenants:            tenants,
		WorkerConns:        *workerConns,
		StragglerAfter:     *straggler,
		Sched: compman.SchedConfig{
			MaxConcurrent: *maxConc,
			MaxQueue:      *maxQueue,
			MaxPerDataset: *maxPerDs,
			MaxPerTenant:  *maxPerTen,
		},
	}
	if *traceLog {
		log.Print("WARNING: -unsafe-trace-log exposes raw per-stage query timings in the log; " +
			"keep this log operator-private (SECURITY.md §timing)")
		cfg.TraceLogger = log.Default()
		cfg.TraceThreshold = *traceSlower
	}
	srv := compman.NewServer(reg, cfg)

	var stopAdmin func()
	if *adminAddr != "" {
		al, stop, err := serveAdmin(*adminAddr, newAdminHandler(tel, reg, led, srv, tenants, *adminToken))
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		stopAdmin = stop
		routes := "/metrics /traces /queries /budget /flight /workers /healthz /datasets /ledger /cache /debug/pprof/"
		if tenants != nil {
			routes += " /tenants"
		}
		if *adminToken != "" {
			routes += " (token-gated)"
		}
		log.Printf("admin endpoint on http://%s (%s)", al.Addr(), routes)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	// Graceful shutdown: on SIGINT/SIGTERM, stop serving and flush the
	// budget ledger one final time so no spend is lost.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutting down")
		if statePath != "" {
			if err := reg.SaveBudgets(statePath); err != nil {
				log.Printf("final budget-state flush failed: %v", err)
			}
		}
		if led != nil {
			// Flush the group-commit tail so a clean shutdown leaves
			// nothing volatile (a crash here would still only over-count).
			if err := led.Close(); err != nil {
				log.Printf("final ledger flush failed: %v", err)
			}
		}
		if alog != nil {
			if err := alog.Close(); err != nil {
				log.Printf("closing audit log: %v", err)
			}
		}
		if stopAdmin != nil {
			stopAdmin()
		}
		srv.Close()
	}()

	log.Printf("serving %d dataset(s) %v on %s", len(reg.Names()), reg.Names(), l.Addr())
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}

// registerSpec parses one -dataset flag value and registers the table.
func registerSpec(reg *dataset.Registry, spec string) error {
	nameAndRest := strings.SplitN(spec, "=", 2)
	if len(nameAndRest) != 2 || nameAndRest[0] == "" {
		return fmt.Errorf("want name=path[:opts], got %q", spec)
	}
	name := nameAndRest[0]
	parts := strings.Split(nameAndRest[1], ":")
	path := parts[0]

	opts := dataset.RegisterOptions{}
	header := false
	for _, opt := range parts[1:] {
		kv := strings.SplitN(opt, "=", 2)
		switch kv[0] {
		case "header":
			header = true
		case "budget":
			if len(kv) != 2 {
				return fmt.Errorf("budget needs a value")
			}
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return fmt.Errorf("budget: %w", err)
			}
			opts.TotalBudget = v
		case "aged":
			if len(kv) != 2 {
				return fmt.Errorf("aged needs a value")
			}
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return fmt.Errorf("aged: %w", err)
			}
			opts.AgedFraction = v
		case "seed":
			if len(kv) != 2 {
				return fmt.Errorf("seed needs a value")
			}
			v, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				return fmt.Errorf("seed: %w", err)
			}
			opts.Seed = v
		default:
			return fmt.Errorf("unknown option %q", kv[0])
		}
	}

	tbl, err := dataset.LoadCSVFile(path, header)
	if err != nil {
		return err
	}
	_, err = reg.Register(name, tbl, opts)
	if err != nil {
		return err
	}
	log.Printf("registered %q: %d rows x %d cols, budget %v", name, tbl.NumRows(), tbl.Dims(), opts.TotalBudget)
	return nil
}
