package main

import (
	"log"
	"net"
	"net/http"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/ledger"
	"gupt/internal/qcache"
	"gupt/internal/telemetry"
	"gupt/internal/tenant"
)

// newAdminHandler assembles guptd's admin endpoint: the shared telemetry
// registry at /metrics (JSON or Prometheus text by content negotiation),
// per-dataset budget state at /datasets, the durable ledger's status at
// /ledger (per-tenant spend slices via ?tenant=), completed query traces at
// /traces, the live query table at /queries, the ε burn-down plane at
// /budget, the flight recorder's recent query timelines at /flight, tenant
// administration at /tenants (tenancy mode only), /healthz, and
// /debug/pprof/. A non-empty token gates everything but /healthz. The
// endpoint is operator-facing — bind it to loopback or an ops network,
// never the analyst-facing address (see SECURITY.md, "Telemetry and the
// observability side channel").
func newAdminHandler(tel *telemetry.Registry, reg *dataset.Registry, led *ledger.Ledger, srv *compman.Server, tenants *tenant.Registry, token string) http.Handler {
	return telemetry.AdminHandler(newAdminConfig(tel, reg, led, srv, tenants, token))
}

// newAdminConfig builds the admin plane's wiring; split from
// newAdminHandler so tests can enumerate the exact route set via
// telemetry.AdminRoutePatterns and assert the token gate over all of it.
func newAdminConfig(tel *telemetry.Registry, reg *dataset.Registry, led *ledger.Ledger, srv *compman.Server, tenants *tenant.Registry, token string) telemetry.AdminConfig {
	cfg := telemetry.AdminConfig{
		Registry: tel,
		Health:   func() error { return nil },
		Datasets: func() []telemetry.DatasetStats { return datasetStats(tel, reg) },
		Ledger:   func() telemetry.LedgerStatus { return ledgerStatus(led) },
		Token:    token,
	}
	if srv != nil {
		cfg.Traces = srv.Traces
		cfg.Queries = srv.LiveQueries
		cfg.Cache = func() telemetry.CacheStatus { return cacheStatus(srv.CacheStats()) }
		cfg.Workers = srv.WorkerStats
		cfg.Budget = srv.BudgetRows
		cfg.Flight = srv.Flights
	}
	if tenants != nil {
		cfg.Extra = tenantHandlers(tenants)
		cfg.TenantSpend = func(id string) []telemetry.TenantSpendRow { return tenantSpend(tenants, id) }
	}
	return cfg
}

// tenantSpend builds one tenant's /ledger?tenant= slice: ε spent per
// dataset, with the quota ceiling where one is configured.
func tenantSpend(tenants *tenant.Registry, id string) []telemetry.TenantSpendRow {
	spent := tenants.SpentByDataset(id)
	rows := make([]telemetry.TenantSpendRow, 0, len(spent))
	for ds, s := range spent {
		_, quota, limited := tenants.QuotaState(id, ds)
		rows = append(rows, telemetry.TenantSpendRow{
			Dataset:      ds,
			SpentEpsilon: s,
			QuotaEpsilon: quota,
			Unlimited:    !limited,
		})
	}
	return rows
}

// cacheStatus maps the noisy-answer cache's counters onto the admin wire
// form; a disabled cache (MaxEntries 0) reports Enabled: false.
func cacheStatus(st qcache.Stats) telemetry.CacheStatus {
	return telemetry.CacheStatus{
		Enabled:       st.MaxEntries > 0,
		Entries:       st.Entries,
		MaxEntries:    st.MaxEntries,
		Bytes:         st.Bytes,
		TTLSeconds:    st.TTLSeconds,
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Expirations:   st.Expirations,
		Invalidations: st.Invalidations,
	}
}

// ledgerStatus maps the ledger's operational state onto the admin wire
// form; a nil ledger reports Enabled: false.
func ledgerStatus(led *ledger.Ledger) telemetry.LedgerStatus {
	if led == nil {
		return telemetry.LedgerStatus{SnapshotAgeSeconds: -1}
	}
	st := led.Status()
	age := -1.0
	if !st.SnapshotAt.IsZero() {
		age = time.Since(st.SnapshotAt).Seconds()
	}
	return telemetry.LedgerStatus{
		Enabled:            true,
		Dir:                st.Dir,
		SyncPolicy:         st.SyncPolicy,
		Records:            st.Records,
		SyncedRecords:      st.Synced,
		WALBytes:           st.WALBytes,
		Datasets:           st.Datasets,
		LastFsync:          st.LastFsync,
		SnapshotSeq:        st.SnapshotSeq,
		SnapshotAt:         st.SnapshotAt,
		SnapshotAgeSeconds: age,
		RecoveredTornTail:  st.RecoveredTornTail,
		Poisoned:           st.Poisoned,
	}
}

// datasetStats builds the /datasets rows: the accountant's ledger state
// plus the per-dataset refusal counter the budget manager maintains.
func datasetStats(tel *telemetry.Registry, reg *dataset.Registry) []telemetry.DatasetStats {
	names := reg.Names()
	stats := make([]telemetry.DatasetStats, 0, len(names))
	for _, name := range names {
		r, err := reg.Lookup(name)
		if err != nil {
			continue // unregistered between Names and Lookup
		}
		acct := r.Accountant
		stats = append(stats, telemetry.DatasetStats{
			Name:             name,
			TotalEpsilon:     acct.Total(),
			SpentEpsilon:     acct.Spent(),
			RemainingEpsilon: acct.Remaining(),
			Queries:          acct.Queries(),
			Refusals:         tel.Counter("budget.refusals." + name).Value(),
		})
	}
	return stats
}

// serveAdmin starts the admin HTTP server on addr and returns its
// listener (so callers learn the bound address for ":0") and a shutdown
// func. Serving errors after startup go to the process log.
func serveAdmin(addr string, handler http.Handler) (net.Listener, func(), error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			log.Printf("admin server: %v", err)
		}
	}()
	return l, func() { srv.Close() }, nil
}
