package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"gupt/internal/compman"
	"gupt/internal/dataset"
	"gupt/internal/telemetry"
	"gupt/internal/telemetry/audit"
)

// startWorkerProcess builds the real gupt-worker binary and runs it as a
// separate OS process on a kernel-assigned port, returning its address.
// This is deliberately NOT an in-process worker: the point of the test is
// that trace context survives the actual process boundary.
func startWorkerProcess(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gupt-worker")
	build := exec.Command("go", "build", "-o", bin, "gupt/cmd/gupt-worker")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building gupt-worker: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The worker logs its bound address; scan for it rather than racing a
	// fixed port.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "executing blocks on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("executing blocks on "):])
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(30 * time.Second):
		t.Fatal("gupt-worker never reported its listen address")
		return ""
	}
}

// The tentpole acceptance walk: one query through a guptd-shaped server
// backed by an out-of-process gupt-worker must produce a single trace at
// /traces whose span tree includes the worker's own spans, an empty
// /queries table once settled, a Prometheus-format /metrics view, and a
// verifiable audit record carrying the same trace id.
func TestQueryTraceAcrossProcesses(t *testing.T) {
	workerAddr := startWorkerProcess(t)

	var sb strings.Builder
	sb.WriteString("age\n")
	for i := 0; i < 400; i++ {
		sb.WriteString("40\n")
	}
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "census="+writeCSV(t, sb.String())+":budget=5:header"); err != nil {
		t.Fatal(err)
	}

	auditDir := t.TempDir()
	alog, err := audit.Open(auditDir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer alog.Close()

	client, admin := startGuptd(t, reg, compman.ServerConfig{
		WorkerAddrs: []string{workerAddr},
		Audit:       alog,
	})

	resp, err := client.Query(&compman.Request{
		Dataset:      "census",
		Program:      &compman.ProgramSpec{Type: "mean"},
		OutputRanges: []compman.RangeSpec{{Lo: 0, Hi: 150}},
		Epsilon:      1,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(resp.TraceID) {
		t.Fatalf("Response.TraceID = %q, want 32 lowercase hex", resp.TraceID)
	}

	// /traces: exactly one completed trace, spanning both processes.
	code, body := adminGet(t, admin, "/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var traces []telemetry.TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("/traces: %v\n%s", err, body)
	}
	if len(traces) != 1 {
		t.Fatalf("/traces has %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.ID != resp.TraceID || tr.Dataset != "census" || tr.Outcome != "ok" {
		t.Fatalf("trace = %+v, want id %s dataset census outcome ok", tr, resp.TraceID)
	}
	workerStages := map[string]bool{}
	serverStages := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Process == "worker:"+workerAddr {
			workerStages[sp.Stage] = true
		} else if sp.Process == "" {
			serverStages[sp.Stage] = true
		}
		if sp.BucketMillis != -1 && sp.BucketMillis <= 0 {
			t.Errorf("span %s/%s has non-bucketed duration %v", sp.Process, sp.Stage, sp.BucketMillis)
		}
	}
	if !workerStages[telemetry.StageWorkerSetup] || !workerStages[telemetry.StageWorkerExecute] {
		t.Errorf("worker spans missing: got %v", workerStages)
	}
	if !serverStages[telemetry.StageBlocks] || !serverStages[telemetry.StageNoising] {
		t.Errorf("server spans missing: got %v", serverStages)
	}

	// /queries: nothing live once the query settled.
	code, body = adminGet(t, admin, "/queries")
	if code != http.StatusOK {
		t.Fatalf("/queries = %d", code)
	}
	var live []telemetry.InflightSnapshot
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatalf("/queries: %v\n%s", err, body)
	}
	if len(live) != 0 {
		t.Errorf("/queries = %+v after settlement, want empty", live)
	}

	// /metrics in Prometheus text format, by content negotiation.
	req, err := http.NewRequest("GET", admin+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	promBody, err := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := hresp.Header.Get("Content-Type"); got != telemetry.PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", got, telemetry.PrometheusContentType)
	}
	prom := string(promBody)
	if !strings.Contains(prom, "compman_query_latency_millis_bucket{le=") {
		t.Errorf("Prometheus view missing latency buckets:\n%.400s", prom)
	}
	if strings.Contains(prom, "_sum") {
		t.Error("Prometheus view exports a _sum series (raw-duration side channel)")
	}

	// The audit chain verifies and carries the query's trace id.
	rep, err := audit.Verify(auditDir)
	if err != nil {
		t.Fatalf("audit verify: %v", err)
	}
	if rep.Records < 1 {
		t.Fatal("no audit records written")
	}
	segs, _ := filepath.Glob(filepath.Join(auditDir, "audit-*.log"))
	var found bool
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), resp.TraceID) {
			found = true
		}
	}
	if !found {
		t.Errorf("audit log does not mention trace id %s", resp.TraceID)
	}
}
