package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gupt/internal/dataset"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegisterSpecBasic(t *testing.T) {
	path := writeCSV(t, "age\n30\n40\n50\n")
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "census="+path+":budget=5:header"); err != nil {
		t.Fatal(err)
	}
	r, err := reg.Lookup("census")
	if err != nil {
		t.Fatal(err)
	}
	if r.Private.NumRows() != 3 || r.Accountant.Total() != 5 {
		t.Errorf("rows=%d budget=%v", r.Private.NumRows(), r.Accountant.Total())
	}
}

func TestRegisterSpecAgedAndSeed(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		sb.WriteString("42\n")
	}
	path := writeCSV(t, sb.String())
	reg := dataset.NewRegistry()
	if err := registerSpec(reg, "d="+path+":budget=1:aged=0.2:seed=7"); err != nil {
		t.Fatal(err)
	}
	r, _ := reg.Lookup("d")
	if !r.HasAged() || r.Aged.NumRows() != 20 {
		t.Errorf("aged rows = %v", r.Aged)
	}
}

func TestRegisterSpecErrors(t *testing.T) {
	path := writeCSV(t, "1\n2\n")
	reg := dataset.NewRegistry()
	cases := []string{
		"",                      // empty
		"noequals",              // missing =
		"=path",                 // empty name
		"d=" + path,             // missing budget
		"d=" + path + ":budget", // budget without value
		"d=" + path + ":budget=x",
		"d=" + path + ":budget=1:aged",
		"d=" + path + ":budget=1:aged=x",
		"d=" + path + ":budget=1:seed=x",
		"d=" + path + ":budget=1:mystery=1",
		"d=/nonexistent.csv:budget=1",
	}
	for _, spec := range cases {
		if err := registerSpec(reg, spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
