package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"strings"
	"time"
)

// Report is the machine-readable counterpart of gupt-bench's text tables:
// one run of the harness, with per-experiment outcomes and (where the
// experiment produces a plottable series) the parsed CSV data. It is what
// -json writes and what BENCH_PR2.json in the repo root contains.
type Report struct {
	// Seed and Quick pin the parameters the run used, so a checked-in
	// report is reproducible.
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick"`
	// Experiments appear in the order they ran.
	Experiments []ExperimentReport `json:"experiments"`
}

// ExperimentReport is one experiment's outcome.
type ExperimentReport struct {
	ID string `json:"id"`
	OK bool   `json:"ok"`
	// Error holds the failure message when OK is false.
	Error string `json:"error,omitempty"`
	// WallMillis is the experiment's wall-clock runtime in milliseconds.
	// This is harness time, not query time: it is operator-facing
	// benchmark output over synthetic data, not a per-query export.
	WallMillis int64 `json:"wallMillis"`
	// Series is the experiment's CSV series (error metrics, overheads, …)
	// parsed into a header row plus data rows; nil when the experiment
	// has no plottable series.
	Series *Series `json:"series,omitempty"`
}

// Series is a parsed CSV table.
type Series struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// parseSeries converts a result's CSV() text into a Series. Experiments
// emit simple comma-separated tables; a parse failure is reported rather
// than silently dropped.
func parseSeries(text string) (*Series, error) {
	records, err := csv.NewReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, nil
	}
	s := &Series{Header: records[0], Rows: records[1:]}
	if s.Rows == nil {
		s.Rows = [][]string{}
	}
	return s, nil
}

// record appends one experiment outcome to the report.
func (r *Report) record(id string, result tabler, elapsed time.Duration, runErr error) {
	er := ExperimentReport{ID: id, OK: runErr == nil, WallMillis: elapsed.Milliseconds()}
	if runErr != nil {
		er.Error = runErr.Error()
	} else if c, ok := result.(csver); ok {
		series, err := parseSeries(c.CSV())
		if err != nil {
			er.OK = false
			er.Error = "parsing csv series: " + err.Error()
		} else {
			er.Series = series
		}
	}
	r.Experiments = append(r.Experiments, er)
}

// write marshals the report to path, indented so diffs of a checked-in
// report stay readable.
func (r *Report) write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
