// Command gupt-bench regenerates the GUPT paper's evaluation: every figure
// and table from §6.1 and §7, printed as text tables and optionally dumped
// as CSV series for plotting. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	gupt-bench                 # run everything at full size
//	gupt-bench -quick          # reduced sizes (seconds instead of minutes)
//	gupt-bench -exp fig4,fig9  # a subset
//	gupt-bench -csv out/       # additionally write <out>/<id>.csv series
//	gupt-bench -json run.json  # machine-readable report of the run
//	gupt-bench -list           # show available experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gupt/internal/experiments"
)

// tabler is what every experiment result renders.
type tabler interface{ Table() string }

// csver is implemented by results with plottable series.
type csver interface{ CSV() string }

// stringResult adapts plain-text results (Table 1) to the tabler interface.
type stringResult string

func (s stringResult) Table() string { return string(s) }

// runner executes one experiment.
type runner func(cfg experiments.Config) (tabler, error)

func runners() map[string]runner {
	return map[string]runner{
		"fig3": func(cfg experiments.Config) (tabler, error) { return experiments.Fig3(cfg) },
		"fig4": func(cfg experiments.Config) (tabler, error) { return experiments.Fig4(cfg) },
		"fig5": func(cfg experiments.Config) (tabler, error) { return experiments.Fig5(cfg) },
		"fig6": func(cfg experiments.Config) (tabler, error) { return experiments.Fig6(cfg) },
		"fig7": func(cfg experiments.Config) (tabler, error) { return experiments.Fig7(cfg) },
		"fig8": func(cfg experiments.Config) (tabler, error) { return experiments.Fig8(cfg) },
		"fig9": func(cfg experiments.Config) (tabler, error) { return experiments.Fig9(cfg) },
		"tab1": func(experiments.Config) (tabler, error) {
			return stringResult(experiments.Table1String()), nil
		},
		"overhead": runOverhead,
		"resampling": func(cfg experiments.Config) (tabler, error) {
			return experiments.ResamplingVariance(cfg)
		},
		"distribution": func(cfg experiments.Config) (tabler, error) {
			return experiments.BudgetDistribution(cfg)
		},
		"optimizer": func(cfg experiments.Config) (tabler, error) { return experiments.Optimizer(cfg) },
		"telemetry": func(cfg experiments.Config) (tabler, error) {
			return experiments.TelemetryOverhead(cfg)
		},
		"obs": func(cfg experiments.Config) (tabler, error) {
			return experiments.ObservabilityOverhead(cfg)
		},
		"wire": func(cfg experiments.Config) (tabler, error) {
			return experiments.WireOverhead(cfg)
		},
		"cache": func(cfg experiments.Config) (tabler, error) {
			return experiments.CacheEffect(cfg)
		},
		"tenant": func(cfg experiments.Config) (tabler, error) {
			return experiments.TenancyOverhead(cfg)
		},
		"fanout": func(cfg experiments.Config) (tabler, error) {
			return experiments.FanoutScaling(cfg)
		},
		"timing":       func(cfg experiments.Config) (tabler, error) { return experiments.TimingAttack(cfg) },
		"budgetattack": func(cfg experiments.Config) (tabler, error) { return experiments.BudgetAttack(cfg) },
		"stateattack":  runStateAttack,
	}
}

// runStateAttack builds gupt-app (the marker-probe binary) and runs the
// state side-channel measurement against it.
func runStateAttack(cfg experiments.Config) (tabler, error) {
	dir, err := os.MkdirTemp("", "gupt-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	appPath := filepath.Join(dir, "gupt-app")
	build := exec.Command("go", "build", "-o", appPath, "gupt/cmd/gupt-app")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building gupt-app: %w", err)
	}
	return experiments.StateAttack(cfg, appPath, []string{"-program", "statecheck"}, nil)
}

// runOverhead builds gupt-app next to the bench (it needs a real subprocess
// target) and measures chamber overhead against it.
func runOverhead(cfg experiments.Config) (tabler, error) {
	dir, err := os.MkdirTemp("", "gupt-bench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	appPath := filepath.Join(dir, "gupt-app")
	build := exec.Command("go", "build", "-o", appPath, "gupt/cmd/gupt-app")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return nil, fmt.Errorf("building gupt-app: %w", err)
	}
	appArgs := []string{
		"-program", "kmeans", "-k", "4", "-dims", "10", "-iters", "{iters}",
		"-seed", fmt.Sprint(cfg.Seed),
	}
	return experiments.SandboxOverhead(cfg, appPath, appArgs, nil)
}

func main() {
	log.SetPrefix("gupt-bench: ")
	log.SetFlags(0)

	var (
		quick  = flag.Bool("quick", false, "reduced dataset sizes and trial counts")
		seed   = flag.Int64("seed", 42, "experiment seed")
		exp    = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		csvDir = flag.String("csv", "", "directory to write per-experiment CSV series into")
		jsonTo = flag.String("json", "", "write a machine-readable report of the run to this path")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	all := runners()
	ids := make([]string, 0, len(all))
	for id := range all {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	selected := ids
	if *exp != "" {
		selected = strings.Split(*exp, ",")
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	report := &Report{Seed: *seed, Quick: *quick, Experiments: []ExperimentReport{}}
	failed := 0
	for _, id := range selected {
		id = strings.TrimSpace(id)
		run, ok := all[id]
		if !ok {
			log.Printf("unknown experiment %q (use -list)", id)
			failed++
			continue
		}
		start := time.Now()
		result, err := run(cfg)
		report.record(id, result, time.Since(start), err)
		if err != nil {
			log.Printf("%s: %v", id, err)
			failed++
			continue
		}
		fmt.Println(result.Table())
		if *csvDir != "" {
			if c, ok := result.(csver); ok {
				path := filepath.Join(*csvDir, id+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					log.Printf("%s: writing csv: %v", id, err)
					failed++
				}
			}
		}
	}
	if *jsonTo != "" {
		if err := report.write(*jsonTo); err != nil {
			log.Printf("writing json report: %v", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
