package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

type fakeResult string

func (f fakeResult) Table() string { return "table" }
func (f fakeResult) CSV() string   { return string(f) }

func TestReportRoundTrip(t *testing.T) {
	r := &Report{Seed: 42, Quick: true}
	r.record("fig4", fakeResult("eps,err\n0.5,1.25\n1,0.6\n"), 1500*time.Millisecond, nil)
	r.record("tab1", stringResult("text only"), 10*time.Millisecond, nil)
	r.record("fig9", nil, 5*time.Millisecond, errors.New("boom"))

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(&got, r) {
		t.Fatalf("round trip changed the report:\n got %+v\nwant %+v", got, *r)
	}

	if len(got.Experiments) != 3 {
		t.Fatalf("experiments = %d, want 3", len(got.Experiments))
	}
	fig4 := got.Experiments[0]
	if !fig4.OK || fig4.WallMillis != 1500 {
		t.Fatalf("fig4 = %+v", fig4)
	}
	if fig4.Series == nil || !reflect.DeepEqual(fig4.Series.Header, []string{"eps", "err"}) {
		t.Fatalf("fig4 series = %+v", fig4.Series)
	}
	if len(fig4.Series.Rows) != 2 || fig4.Series.Rows[1][1] != "0.6" {
		t.Fatalf("fig4 rows = %+v", fig4.Series.Rows)
	}
	if tab1 := got.Experiments[1]; !tab1.OK || tab1.Series != nil {
		t.Fatalf("tab1 (no CSV series) = %+v", tab1)
	}
	if fig9 := got.Experiments[2]; fig9.OK || fig9.Error != "boom" {
		t.Fatalf("fig9 = %+v", fig9)
	}
}

// The checked-in quick-run report must parse and look like a real run.
func TestCheckedInBenchReport(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR2.json"))
	if err != nil {
		t.Skipf("BENCH_PR2.json not present: %v", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_PR2.json does not parse: %v", err)
	}
	if !r.Quick {
		t.Fatal("checked-in report should be a -quick run")
	}
	if len(r.Experiments) == 0 {
		t.Fatal("checked-in report has no experiments")
	}
	ids := map[string]bool{}
	for _, e := range r.Experiments {
		ids[e.ID] = true
		if !e.OK {
			t.Errorf("experiment %s failed in checked-in run: %s", e.ID, e.Error)
		}
	}
	for _, want := range []string{"fig4", "fig9", "tab1"} {
		if !ids[want] {
			t.Errorf("checked-in report missing experiment %q", want)
		}
	}
}

// The checked-in fan-out report must show the sharded dispatcher actually
// scaling (>=2x blocks/s from the smallest to the largest fleet) and the
// overload burst refusing cleanly: retry hints on every refusal, no late
// answers, no malformed failures.
func TestCheckedInFanoutReport(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_PR9.json"))
	if err != nil {
		t.Skipf("BENCH_PR9.json not present: %v", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("BENCH_PR9.json does not parse: %v", err)
	}
	var series *Series
	for _, e := range r.Experiments {
		if e.ID != "fanout" {
			continue
		}
		if !e.OK {
			t.Fatalf("fanout experiment failed in checked-in run: %s", e.Error)
		}
		series = e.Series
	}
	if series == nil {
		t.Fatal("BENCH_PR9.json has no fanout series")
	}
	vals := map[string]string{}
	for _, row := range series.Rows {
		if len(row) == 3 {
			vals[row[0]+"/"+row[1]] = row[2]
		}
	}
	var speedup float64
	if _, err := fmt.Sscanf(vals["speedup_blocks_per_sec/0"], "%g", &speedup); err != nil {
		t.Fatalf("unreadable speedup %q: %v", vals["speedup_blocks_per_sec/0"], err)
	}
	if speedup < 2 {
		t.Errorf("1->4 worker speedup %.2fx, want >= 2x", speedup)
	}
	if vals["overload_refused/0"] != vals["overload_retry_hints/0"] {
		t.Errorf("refusals %s != retry hints %s: some refusal lacked a hint",
			vals["overload_refused/0"], vals["overload_retry_hints/0"])
	}
	for _, zero := range []string{"overload_late_answers/0", "overload_other_errors/0"} {
		if vals[zero] != "0" {
			t.Errorf("%s = %s, want 0", zero, vals[zero])
		}
	}
}
