// Command gupt-app bundles GUPT's built-in analysis programs as a
// standalone executable speaking the sandbox chamber protocol: one JSON
// Request on stdin, one JSON Response on stdout. The computation manager
// launches it (or any analyst-supplied binary with the same contract)
// inside a subprocess chamber, once per data block.
//
// Usage:
//
//	gupt-app -program mean -col 0
//	gupt-app -program median -col 2
//	gupt-app -program variance -col 1
//	gupt-app -program percentile -col 0 -p 0.9
//	gupt-app -program kmeans -k 4 -dims 10 -iters 20 -seed 1
//	gupt-app -program logreg -dims 10 -label 10 -iters 100 -rate 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

func main() {
	var (
		program = flag.String("program", "", "program: mean | median | variance | percentile | kmeans | logreg")
		col     = flag.Int("col", 0, "target column for scalar statistics")
		p       = flag.Float64("p", 0.5, "quantile for -program percentile")
		k       = flag.Int("k", 2, "cluster count for -program kmeans")
		dims    = flag.Int("dims", 1, "feature dimensions for kmeans/logreg")
		label   = flag.Int("label", 0, "label column for -program logreg")
		iters   = flag.Int("iters", 20, "iterations for kmeans/logreg")
		rate    = flag.Float64("rate", 0.1, "learning rate for -program logreg")
		seed    = flag.Int64("seed", 1, "seed for -program kmeans")
	)
	flag.Parse()

	// statecheck is the state-attack probe used by the side-channel
	// experiments: it writes a marker in its scratch space and reports
	// whether a marker from a previous execution survived (it never should
	// under GUPT's chambers).
	if *program == "statecheck" {
		if err := sandbox.ServeApp(os.Stdin, os.Stdout, stateCheck); err != nil {
			fmt.Fprintln(os.Stderr, "gupt-app:", err)
			os.Exit(1)
		}
		return
	}

	prog, err := buildProgram(*program, *col, *p, *k, *dims, *label, *iters, *rate, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gupt-app:", err)
		os.Exit(2)
	}
	if err := sandbox.ServeApp(os.Stdin, os.Stdout, prog.Run); err != nil {
		fmt.Fprintln(os.Stderr, "gupt-app:", err)
		os.Exit(1)
	}
}

// stateCheck implements the state-attack probe.
func stateCheck(block []mathutil.Vec) (mathutil.Vec, error) {
	marker := filepath.Join(os.Getenv(sandbox.ScratchEnv), "marker")
	found := 0.0
	if _, err := os.Stat(marker); err == nil {
		found = 1
	}
	if err := os.WriteFile(marker, []byte("leak"), 0o600); err != nil {
		return nil, err
	}
	return mathutil.Vec{found}, nil
}

func buildProgram(name string, col int, p float64, k, dims, label, iters int, rate float64, seed int64) (analytics.Program, error) {
	switch name {
	case "mean":
		return analytics.Mean{Col: col}, nil
	case "median":
		return analytics.Median{Col: col}, nil
	case "variance":
		return analytics.Variance{Col: col}, nil
	case "percentile":
		return analytics.Percentile{Col: col, P: p}, nil
	case "kmeans":
		return analytics.KMeans{K: k, FeatureDims: dims, Iters: iters, Seed: seed}, nil
	case "logreg":
		return analytics.LogisticRegression{FeatureDims: dims, LabelCol: label, Iters: iters, LearnRate: rate}, nil
	case "":
		return nil, fmt.Errorf("missing -program")
	default:
		return nil, fmt.Errorf("unknown program %q", name)
	}
}
