package main

import (
	"strings"
	"testing"

	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

func TestBuildProgram(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"mean", "mean(col=1)"},
		{"median", "median(col=1)"},
		{"variance", "variance(col=1)"},
		{"percentile", "percentile(col=1,p=0.9)"},
		{"kmeans", "kmeans(k=3,iters=7)"},
		{"logreg", "logreg(d=2,iters=7)"},
	}
	for _, c := range cases {
		prog, err := buildProgram(c.name, 1, 0.9, 3, 2, 2, 7, 0.1, 5)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if prog.Name() != c.want {
			t.Errorf("%s: Name() = %q, want %q", c.name, prog.Name(), c.want)
		}
	}
	if _, err := buildProgram("", 0, 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := buildProgram("sorcery", 0, 0, 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown program accepted")
	}
}

// The app loop speaks the chamber protocol end to end.
func TestAppServesProtocol(t *testing.T) {
	prog, err := buildProgram("mean", 0, 0.5, 2, 1, 0, 10, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var in, out strings.Builder
	if err := sandbox.WriteRequest(&in, []mathutil.Vec{{2}, {4}, {6}}); err != nil {
		t.Fatal(err)
	}
	if err := sandbox.ServeApp(strings.NewReader(in.String()), &out, prog.Run); err != nil {
		t.Fatal(err)
	}
	result, err := sandbox.ReadResponse(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if result[0] != 4 {
		t.Errorf("app mean = %v, want 4", result[0])
	}
}
