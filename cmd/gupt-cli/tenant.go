package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"text/tabwriter"

	"gupt/internal/tenant"
)

// runTenant dispatches the tenant-administration subcommands. They talk
// HTTP to guptd's admin plane (-admin-addr on the server), never the
// analyst wire, and carry the admin token from -token or GUPT_ADMIN_TOKEN:
//
//	gupt-cli tenant create <id>                  -admin 127.0.0.1:7114
//	gupt-cli tenant grant <id> <dataset>         ("*" grants all datasets)
//	gupt-cli tenant quota <id> <dataset> <eps>
//	gupt-cli tenant limits <id> <qps> <burst> <maxInflight>
//	gupt-cli tenant list
//
// create prints the tenant's raw API key exactly once — the server stores
// only its hash, so a lost key means issuing a new one.
func runTenant(args []string) error {
	usage := "usage: gupt-cli tenant <create|grant|quota|limits|list> [-admin addr] [-token t] <args...>"
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	verb := args[0]
	fs := flag.NewFlagSet("gupt-cli tenant "+verb, flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7114", "guptd admin endpoint address")
	token := fs.String("token", os.Getenv("GUPT_ADMIN_TOKEN"), "admin token (default $GUPT_ADMIN_TOKEN)")
	// Accept flags before or after the positionals (`tenant create alice
	// -admin host:port` reads naturally); stdlib Parse stops at the first
	// positional, so re-parse the remainder after collecting each one.
	var pos []string
	rest := args[1:]
	for {
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rest = fs.Args()
		if len(rest) == 0 {
			break
		}
		pos = append(pos, rest[0])
		rest = rest[1:]
	}
	need := func(n int, form string) error {
		if len(pos) != n {
			return fmt.Errorf("usage: gupt-cli tenant %s %s", verb, form)
		}
		return nil
	}

	switch verb {
	case "create":
		if err := need(1, "<id>"); err != nil {
			return err
		}
		var out struct {
			ID     string `json:"id"`
			APIKey string `json:"apiKey"`
		}
		if err := adminPost(*admin, *token, "/tenants", map[string]any{"id": pos[0]}, &out); err != nil {
			return err
		}
		fmt.Printf("tenant %s created\napi key (shown once, store it now): %s\n", out.ID, out.APIKey)
		return nil
	case "grant":
		if err := need(2, "<id> <dataset>"); err != nil {
			return err
		}
		if err := adminPost(*admin, *token, "/tenants/grant", map[string]any{"id": pos[0], "dataset": pos[1]}, nil); err != nil {
			return err
		}
		fmt.Printf("granted %s -> %s\n", pos[0], pos[1])
		return nil
	case "quota":
		if err := need(3, "<id> <dataset> <epsilon>"); err != nil {
			return err
		}
		eps, err := strconv.ParseFloat(pos[2], 64)
		if err != nil {
			return fmt.Errorf("epsilon: %w", err)
		}
		if err := adminPost(*admin, *token, "/tenants/quota", map[string]any{"id": pos[0], "dataset": pos[1], "epsilon": eps}, nil); err != nil {
			return err
		}
		fmt.Printf("quota %s/%s = %g ε\n", pos[0], pos[1], eps)
		return nil
	case "limits":
		if err := need(4, "<id> <qps> <burst> <maxInflight>"); err != nil {
			return err
		}
		qps, err := strconv.ParseFloat(pos[1], 64)
		if err != nil {
			return fmt.Errorf("qps: %w", err)
		}
		burst, err := strconv.Atoi(pos[2])
		if err != nil {
			return fmt.Errorf("burst: %w", err)
		}
		inflight, err := strconv.Atoi(pos[3])
		if err != nil {
			return fmt.Errorf("maxInflight: %w", err)
		}
		body := map[string]any{"id": pos[0], "qps": qps, "burst": burst, "maxInflight": inflight}
		if err := adminPost(*admin, *token, "/tenants/limits", body, nil); err != nil {
			return err
		}
		fmt.Printf("limits %s: %g qps, burst %d, max inflight %d\n", pos[0], qps, burst, inflight)
		return nil
	case "list":
		if err := need(0, ""); err != nil {
			return err
		}
		var infos []tenant.Info
		if err := adminGetJSON(*admin, *token, "/tenants", &infos); err != nil {
			return err
		}
		renderTenantTable(os.Stdout, infos)
		return nil
	default:
		return fmt.Errorf("unknown tenant subcommand %q\n%s", verb, usage)
	}
}

// adminPost sends one JSON mutation to the admin plane and decodes the
// reply into out (when non-nil). Non-2xx replies surface the server's
// message verbatim.
func adminPost(adminAddr, token, path string, body any, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, "http://"+adminAddr+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// renderTenantTable pretty-prints the sanitized tenant list.
func renderTenantTable(w io.Writer, infos []tenant.Info) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tADMIN\tDISABLED\tGRANTS\tQUOTAS ε\tSPENT ε\tQPS\tBURST\tINFLIGHT")
	for _, in := range infos {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%v\t%g\t%d\t%d\n",
			in.ID, in.Admin, in.Disabled, in.Grants, in.Quotas, in.Spent,
			in.RateQPS, in.RateBurst, in.MaxInflight)
	}
	tw.Flush()
}
