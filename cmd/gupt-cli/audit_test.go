package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gupt/internal/telemetry/audit"
)

// writeAuditLog populates a fresh audit directory with n query records and
// returns its path plus the single segment file.
func writeAuditLog(t *testing.T, n int) (dir, seg string) {
	t.Helper()
	dir = t.TempDir()
	alog, err := audit.Open(dir, audit.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := alog.Append(audit.Record{
			Type:    audit.TypeQuery,
			TraceID: "0123456789abcdef0123456789abcdef",
			Dataset: "census",
			Outcome: "ok",
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := alog.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "audit-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, err = %v", segs, err)
	}
	return dir, segs[0]
}

func TestAuditVerifyCleanLog(t *testing.T) {
	dir, _ := writeAuditLog(t, 5)
	var out bytes.Buffer
	if err := runAuditVerify(dir, &out); err != nil {
		t.Fatalf("verify failed on a clean log: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: hash chain verified") {
		t.Errorf("output missing OK line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "records: 5") {
		t.Errorf("output missing record count:\n%s", out.String())
	}
}

// A single flipped byte inside any record must fail verification — the
// acceptance criterion for tamper evidence.
func TestAuditVerifyDetectsOneByteEdit(t *testing.T) {
	dir, seg := writeAuditLog(t, 5)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	edited := bytes.Replace(data, []byte("census"), []byte("densus"), 1)
	if bytes.Equal(edited, data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(seg, edited, 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = runAuditVerify(dir, &out)
	if err == nil {
		t.Fatalf("verify passed on an edited log:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "FAILED") {
		t.Errorf("error %q does not say FAILED", err)
	}
}

// Cutting records off the tail must fail verification: the head sidecar
// remembers a chain tip the truncated log can no longer produce.
func TestAuditVerifyDetectsTruncation(t *testing.T) {
	dir, seg := writeAuditLog(t, 5)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if err := os.WriteFile(seg, bytes.Join(lines[:3], nil), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runAuditVerify(dir, &out); err == nil {
		t.Fatalf("verify passed on a truncated log:\n%s", out.String())
	}
}

func TestAuditDispatch(t *testing.T) {
	if err := runAudit(nil); err == nil {
		t.Error("no-arg audit accepted")
	}
	if err := runAudit([]string{"shred"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	dir, _ := writeAuditLog(t, 2)
	if err := runAudit([]string{"verify", dir}); err != nil {
		t.Errorf("positional dir: %v", err)
	}
	if err := runAudit([]string{"verify", "-dir", dir}); err != nil {
		t.Errorf("-dir flag: %v", err)
	}
}
