package main

import (
	"strings"
	"testing"

	"gupt/internal/telemetry"
)

func TestRenderDatasetTable(t *testing.T) {
	var sb strings.Builder
	renderDatasetTable(&sb, []telemetry.DatasetStats{
		{Name: "census", TotalEpsilon: 2, SpentEpsilon: 1, RemainingEpsilon: 1, Queries: 2, Refusals: 1},
		{Name: "ads", TotalEpsilon: 5, SpentEpsilon: 0, RemainingEpsilon: 5},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "DATASET") || !strings.Contains(lines[0], "REMAINING") {
		t.Fatalf("bad header: %q", lines[0])
	}
	for _, want := range []string{"census", "ads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing dataset %q:\n%s", want, out)
		}
	}
	censusFields := strings.Fields(lines[1])
	if censusFields[0] != "census" || censusFields[len(censusFields)-1] != "1" {
		t.Fatalf("census row = %q", lines[1])
	}
}
