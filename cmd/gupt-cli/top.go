package main

import (
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"gupt/internal/telemetry"
)

// runTop renders the operator's live fleet/queue/budget view:
//
//	gupt-cli top -admin 127.0.0.1:7114 [-interval 2s] [-once] [-tenant id]
//
// Every frame polls the admin plane (/queries, /workers, /budget, /flight,
// /metrics) and renders four panes: in-flight queries with their current
// lifecycle stage, the worker fleet with health and dispatch accounting,
// the ε burn-down table with time-to-exhaustion forecasts, and the flight
// recorder's most recent query timelines. -once prints a single frame and
// exits (scripting and tests); -tenant slices every pane that carries
// tenant attribution. All timings shown are the admin plane's bucketed
// exports — top adds no new observability surface.
func runTop(args []string) error {
	fs := flag.NewFlagSet("gupt-cli top", flag.ExitOnError)
	admin := fs.String("admin", "127.0.0.1:7114", "guptd admin endpoint")
	token := fs.String("admin-token", os.Getenv("GUPT_ADMIN_TOKEN"), "admin token (default $GUPT_ADMIN_TOKEN)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit")
	tenantID := fs.String("tenant", "", "slice tenant-attributed panes to this tenant id")
	flights := fs.Int("flights", 8, "recent flights to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("usage: gupt-cli top [-admin host:port] [-interval d] [-once] [-tenant id]")
	}
	for {
		var frame strings.Builder
		if err := renderTopFrame(&frame, *admin, *token, *tenantID, *flights); err != nil {
			return err
		}
		if *once {
			_, err := io.WriteString(os.Stdout, frame.String())
			return err
		}
		// Clear + home between frames so the view updates in place.
		fmt.Print("\033[2J\033[H" + frame.String())
		time.Sleep(*interval)
	}
}

// renderTopFrame fetches every pane and renders one frame to w.
func renderTopFrame(w io.Writer, admin, token, tenantID string, maxFlights int) error {
	slice := ""
	if tenantID != "" {
		slice = "?tenant=" + url.QueryEscape(tenantID)
	}
	var (
		queries []telemetry.InflightSnapshot
		workers []telemetry.WorkerStatus
		budget  []telemetry.BudgetRow
		flight  []telemetry.FlightRecord
		metrics telemetry.Snapshot
	)
	if err := adminGetJSON(admin, token, "/queries"+slice, &queries); err != nil {
		return err
	}
	if err := adminGetJSON(admin, token, "/workers", &workers); err != nil {
		return err
	}
	if err := adminGetJSON(admin, token, "/budget"+slice, &budget); err != nil {
		return err
	}
	if err := adminGetJSON(admin, token, "/flight"+slice, &flight); err != nil {
		return err
	}
	if err := adminGetJSON(admin, token, "/metrics", &metrics); err != nil {
		return err
	}

	fmt.Fprintf(w, "gupt top — %s", admin)
	if tenantID != "" {
		fmt.Fprintf(w, "  tenant=%s", tenantID)
	}
	fmt.Fprintf(w, "  %s\n", time.Now().Format(time.TimeOnly))
	fmt.Fprintf(w, "fleet: inflight %d  failovers %d  stragglers %d  demotions %d  sched refusals %d\n\n",
		metrics.Gauges["compman.pool.inflight"],
		metrics.Counters["compman.pool.failovers"],
		metrics.Counters["compman.pool.straggler_redispatch"],
		metrics.Counters["compman.pool.demotions"],
		metrics.Counters["compman.queries_overloaded"])

	renderTopQueries(w, queries)
	renderTopWorkers(w, workers)
	renderTopBudget(w, budget)
	renderTopFlights(w, flight, maxFlights)
	return nil
}

func renderTopQueries(w io.Writer, queries []telemetry.InflightSnapshot) {
	fmt.Fprintf(w, "IN FLIGHT (%d)\n", len(queries))
	if len(queries) == 0 {
		fmt.Fprintln(w)
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  ID\tTENANT\tDATASET\tSTAGE\tAGE ≤ms\tSTUCK")
	for _, q := range queries {
		stuck := ""
		if q.Stuck {
			stuck = "STUCK"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%s\t%s\n",
			q.ID, q.Tenant, q.Dataset, q.Stage, bucketLabel(q.ElapsedBucketMillis), stuck)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func renderTopWorkers(w io.Writer, workers []telemetry.WorkerStatus) {
	if len(workers) == 0 {
		return
	}
	fmt.Fprintf(w, "WORKERS (%d)\n", len(workers))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  ADDR\tCONNS\tINFLIGHT\tDONE\tFAILED\tHEALTH")
	for _, ws := range workers {
		health := "ok"
		if ws.Unhealthy {
			health = "UNHEALTHY"
		}
		fmt.Fprintf(tw, "  %s\t%d/%d\t%d\t%d\t%d\t%s\n",
			ws.Addr, ws.Conns, ws.MaxConns, ws.Inflight, ws.Done, ws.Failed, health)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func renderTopBudget(w io.Writer, rows []telemetry.BudgetRow) {
	fmt.Fprintf(w, "ε BURN-DOWN (%d rows)\n", len(rows))
	if len(rows) == 0 {
		fmt.Fprintln(w)
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  DATASET\tTENANT\tREMAINING ε\tSPENT ε\tBURN ε/min\tWINDOW ε\tEXHAUSTED IN\tCROSSED")
	for _, r := range rows {
		tenant := r.Tenant
		if tenant == "" {
			tenant = "(global)"
		}
		remaining := "∞"
		if !r.Unlimited {
			remaining = fmt.Sprintf("%.4g of %.4g", r.EpsilonRemaining, r.EpsilonTotal)
		}
		eta := "-"
		if r.SecondsToExhaustion > 0 {
			eta = (time.Duration(r.SecondsToExhaustion) * time.Second).String()
		}
		crossed := make([]string, 0, len(r.ThresholdsCrossed))
		for _, th := range r.ThresholdsCrossed {
			crossed = append(crossed, fmt.Sprintf("%g%%", th*100))
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%.4g\t%.4g\t%.4g\t%s\t%s\n",
			r.Dataset, tenant, remaining, r.EpsilonSpent, r.BurnPerMinute,
			r.WindowEpsilon, eta, strings.Join(crossed, " "))
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func renderTopFlights(w io.Writer, flights []telemetry.FlightRecord, max int) {
	fmt.Fprintf(w, "RECENT FLIGHTS (%d recorded)\n", len(flights))
	if len(flights) == 0 {
		return
	}
	if max > 0 && len(flights) > max {
		flights = flights[:max]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  TRACE\tTENANT\tDATASET\tOUTCOME\tε\tBLOCKS\t≤ms\tWORKERS\tNOTE")
	for _, f := range flights {
		note := f.Reason
		if f.RetryAfterMillis > 0 {
			note = fmt.Sprintf("%s retry %dms", note, f.RetryAfterMillis)
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%s\t%g\t%d\t%s\t%s\t%s\n",
			f.ID, f.Tenant, f.Dataset, f.Outcome, f.EpsilonCharged, f.Blocks,
			bucketLabel(f.ElapsedBucketMillis), flightWorkerLabel(f.Workers), note)
	}
	tw.Flush()
}

// flightWorkerLabel compresses a flight's worker summaries into one cell:
// "2 (3 disp, 1 stragg, 1 err)" — counts only, full detail is in /flight.
func flightWorkerLabel(workers []telemetry.FlightWorker) string {
	if len(workers) == 0 {
		return "-"
	}
	var disp, stragg, fail, errs int
	for _, fw := range workers {
		disp += fw.Dispatches
		stragg += fw.Stragglers
		fail += fw.Failovers
		errs += fw.Errors
	}
	parts := []string{fmt.Sprintf("%d disp", disp)}
	if stragg > 0 {
		parts = append(parts, fmt.Sprintf("%d stragg", stragg))
	}
	if fail > 0 {
		parts = append(parts, fmt.Sprintf("%d failover", fail))
	}
	if errs > 0 {
		parts = append(parts, fmt.Sprintf("%d err", errs))
	}
	return fmt.Sprintf("%d (%s)", len(workers), strings.Join(parts, ", "))
}

// bucketLabel renders a bucket upper bound: "≤100" or ">5000" for the
// overflow bucket (-1).
func bucketLabel(bound float64) string {
	if bound < 0 {
		return fmt.Sprintf(">%g", telemetry.DefaultLatencyBuckets[len(telemetry.DefaultLatencyBuckets)-1])
	}
	return fmt.Sprintf("≤%g", bound)
}
