package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"gupt/internal/telemetry/audit"
)

// runAudit dispatches the audit subcommands:
//
//	gupt-cli audit verify -dir /var/lib/gupt/audit
//	gupt-cli audit verify /var/lib/gupt/audit
//	gupt-cli audit tail -tenant acme -n 20 /var/lib/gupt/audit
//
// verify recomputes the hash chain over every segment and checks the head
// sidecar against the chain tip; any edit, deletion, insertion, or
// truncation fails with a non-zero exit and a message naming the first
// broken link. A crash artifact (torn final line, head one record behind)
// verifies cleanly but is called out so the operator knows why.
//
// tail renders the most recent audit records, optionally sliced to one
// tenant — the per-tenant audit view of the burn-down plane.
func runAudit(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gupt-cli audit {verify|tail} [-dir] <audit-dir>")
	}
	switch args[0] {
	case "verify":
		fs := flag.NewFlagSet("gupt-cli audit verify", flag.ExitOnError)
		dir := fs.String("dir", "", "audit log directory (or pass it as the positional argument)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" && fs.NArg() == 1 {
			*dir = fs.Arg(0)
		}
		if *dir == "" || fs.NArg() > 1 {
			return fmt.Errorf("usage: gupt-cli audit verify [-dir] <audit-dir>")
		}
		return runAuditVerify(*dir, os.Stdout)
	case "tail":
		fs := flag.NewFlagSet("gupt-cli audit tail", flag.ExitOnError)
		dir := fs.String("dir", "", "audit log directory (or pass it as the positional argument)")
		tenantID := fs.String("tenant", "", "only records attributed to this tenant id")
		n := fs.Int("n", 20, "show the last N matching records (0 = all)")
		asJSON := fs.Bool("json", false, "emit matching records as JSON lines instead of a table")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" && fs.NArg() == 1 {
			*dir = fs.Arg(0)
		}
		if *dir == "" || fs.NArg() > 1 {
			return fmt.Errorf("usage: gupt-cli audit tail [-tenant id] [-n N] [-json] [-dir] <audit-dir>")
		}
		return runAuditTail(*dir, *tenantID, *n, *asJSON, os.Stdout)
	default:
		return fmt.Errorf("unknown audit subcommand %q (want verify or tail)", args[0])
	}
}

// runAuditTail renders the last n audit records, sliced to one tenant when
// tenantID is non-empty. The audit log is operator-private, so this view
// runs against the files directly (same trust boundary as verify).
func runAuditTail(dir, tenantID string, n int, asJSON bool, w io.Writer) error {
	var filter func(audit.Record) bool
	if tenantID != "" {
		filter = func(rec audit.Record) bool { return rec.Tenant == tenantID }
	}
	recs, err := audit.Read(dir, filter)
	if err != nil {
		return err
	}
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	if asJSON {
		enc := json.NewEncoder(w)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SEQ\tTIME\tTYPE\tTENANT\tDATASET\tOUTCOME\tε\tREASON\tDETAIL")
	for _, rec := range recs {
		eps := ""
		if rec.EpsilonCharged != 0 {
			eps = fmt.Sprintf("%g", rec.EpsilonCharged)
		}
		reason := rec.Reason
		if rec.RetryAfterMillis > 0 {
			reason = fmt.Sprintf("%s (retry %dms)", reason, rec.RetryAfterMillis)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			rec.Seq, time.Unix(rec.Time, 0).UTC().Format(time.RFC3339), rec.Type,
			rec.Tenant, rec.Dataset, rec.Outcome, eps, reason, rec.Detail)
	}
	tw.Flush()
	fmt.Fprintf(w, "%d record(s)\n", len(recs))
	return nil
}

// runAuditVerify verifies one audit directory and renders the report. The
// report prints even when verification fails, so the operator sees how far
// the chain was intact before the first broken link.
func runAuditVerify(dir string, w io.Writer) error {
	rep, err := audit.Verify(dir)
	fmt.Fprintf(w, "segments: %d   records: %d   chain tip: seq %d\n", len(rep.Files), rep.Records, rep.LastSeq)
	if rep.LastHash != "" {
		fmt.Fprintf(w, "tip hash: %s\n", rep.LastHash)
	}
	if rep.UnsafeRecords > 0 {
		fmt.Fprintf(w, "NOTE: %d unsafe_raw record(s) carry raw stage timings (-unsafe-trace-log was on; see SECURITY.md)\n", rep.UnsafeRecords)
	}
	if rep.TornTail {
		fmt.Fprintln(w, "NOTE: torn final record (crash mid-append); the chain before it is intact")
	}
	if rep.HeadLagged {
		fmt.Fprintln(w, "NOTE: head sidecar lags the chain by one record (crash between append and head update)")
	}
	if rep.HeadMissing {
		fmt.Fprintln(w, "NOTE: no head sidecar yet (log has at most one record)")
	}
	if err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Fprintln(w, "OK: hash chain verified")
	return nil
}
