package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gupt/internal/telemetry/audit"
)

// runAudit dispatches the audit subcommands:
//
//	gupt-cli audit verify -dir /var/lib/gupt/audit
//	gupt-cli audit verify /var/lib/gupt/audit
//
// verify recomputes the hash chain over every segment and checks the head
// sidecar against the chain tip; any edit, deletion, insertion, or
// truncation fails with a non-zero exit and a message naming the first
// broken link. A crash artifact (torn final line, head one record behind)
// verifies cleanly but is called out so the operator knows why.
func runAudit(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: gupt-cli audit verify [-dir] <audit-dir>")
	}
	switch args[0] {
	case "verify":
		fs := flag.NewFlagSet("gupt-cli audit verify", flag.ExitOnError)
		dir := fs.String("dir", "", "audit log directory (or pass it as the positional argument)")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		if *dir == "" && fs.NArg() == 1 {
			*dir = fs.Arg(0)
		}
		if *dir == "" || fs.NArg() > 1 {
			return fmt.Errorf("usage: gupt-cli audit verify [-dir] <audit-dir>")
		}
		return runAuditVerify(*dir, os.Stdout)
	default:
		return fmt.Errorf("unknown audit subcommand %q (want verify)", args[0])
	}
}

// runAuditVerify verifies one audit directory and renders the report. The
// report prints even when verification fails, so the operator sees how far
// the chain was intact before the first broken link.
func runAuditVerify(dir string, w io.Writer) error {
	rep, err := audit.Verify(dir)
	fmt.Fprintf(w, "segments: %d   records: %d   chain tip: seq %d\n", len(rep.Files), rep.Records, rep.LastSeq)
	if rep.LastHash != "" {
		fmt.Fprintf(w, "tip hash: %s\n", rep.LastHash)
	}
	if rep.UnsafeRecords > 0 {
		fmt.Fprintf(w, "NOTE: %d unsafe_raw record(s) carry raw stage timings (-unsafe-trace-log was on; see SECURITY.md)\n", rep.UnsafeRecords)
	}
	if rep.TornTail {
		fmt.Fprintln(w, "NOTE: torn final record (crash mid-append); the chain before it is intact")
	}
	if rep.HeadLagged {
		fmt.Fprintln(w, "NOTE: head sidecar lags the chain by one record (crash between append and head update)")
	}
	if rep.HeadMissing {
		fmt.Fprintln(w, "NOTE: no head sidecar yet (log has at most one record)")
	}
	if err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Fprintln(w, "OK: hash chain verified")
	return nil
}
