package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"

	"gupt/internal/telemetry"
)

// adminGetJSON fetches one admin-plane view and decodes the JSON reply,
// presenting the admin token (when set) as X-Admin-Token — the same
// carrier the token gate documents.
func adminGetJSON(adminAddr, token, path string, out any) error {
	url := "http://" + adminAddr + path
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("parsing %s: %w", url, err)
	}
	return nil
}

// adminStats renders the operator's per-dataset budget table from guptd's
// admin endpoint (-admin-addr). This is the pretty-print mode of -op stats:
// it talks HTTP to the admin plane instead of the analyst protocol, so it
// sees per-dataset remaining budget and refusal counts.
func adminStats(adminAddr, token string) error {
	var stats []telemetry.DatasetStats
	if err := adminGetJSON(adminAddr, token, "/datasets", &stats); err != nil {
		return err
	}
	renderDatasetTable(os.Stdout, stats)
	return nil
}

// adminCache renders the noisy-answer cache's counters from guptd's admin
// endpoint: hit/miss/eviction totals and current occupancy. Like -op stats
// -admin, this is an operator view over HTTP, not the analyst protocol.
func adminCache(adminAddr, token string) error {
	var st telemetry.CacheStatus
	if err := adminGetJSON(adminAddr, token, "/cache", &st); err != nil {
		return err
	}
	renderCacheStatus(os.Stdout, st)
	return nil
}

// renderCacheStatus pretty-prints the cache counters.
func renderCacheStatus(w io.Writer, st telemetry.CacheStatus) {
	if !st.Enabled {
		fmt.Fprintln(w, "noisy-answer cache: disabled")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENTRIES\tMAX\tBYTES\tTTL s\tHITS\tMISSES\tEVICTED\tEXPIRED\tINVALIDATED")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		st.Entries, st.MaxEntries, st.Bytes, st.TTLSeconds,
		st.Hits, st.Misses, st.Evictions, st.Expirations, st.Invalidations)
	tw.Flush()
}

// renderDatasetTable pretty-prints the per-dataset budget state.
func renderDatasetTable(w io.Writer, stats []telemetry.DatasetStats) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "DATASET\tBUDGET ε\tSPENT ε\tREMAINING ε\tQUERIES\tREFUSALS")
	for _, ds := range stats {
		fmt.Fprintf(tw, "%s\t%g\t%g\t%g\t%d\t%d\n",
			ds.Name, ds.TotalEpsilon, ds.SpentEpsilon, ds.RemainingEpsilon,
			ds.Queries, ds.Refusals)
	}
	tw.Flush()
}
