// Command gupt-cli is the analyst's client for a guptd server. It submits
// one query (or a budget/list inquiry) over the computation-manager
// protocol and prints the differentially private answer.
//
// Usage:
//
//	gupt-cli -addr 127.0.0.1:7113 -op list
//	gupt-cli -addr 127.0.0.1:7113 -op budget -dataset census
//	gupt-cli -op stats -admin 127.0.0.1:7114   # per-dataset budget table
//	gupt-cli -addr 127.0.0.1:7113 -op query -dataset census \
//	         -program mean -col 0 -range 0,150 -epsilon 1
//	gupt-cli -op query -dataset census -program mean -col 0 \
//	         -range 0,150 -accuracy 0.9 -confidence 0.9
//	gupt-cli audit verify /var/lib/gupt/audit   # check the audit log's hash chain
//	gupt-cli audit tail -tenant acme /var/lib/gupt/audit
//	gupt-cli top -admin 127.0.0.1:7114          # live fleet/queue/budget view
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"gupt/internal/compman"
)

type rangeFlags []compman.RangeSpec

func (r *rangeFlags) String() string { return fmt.Sprintf("%v", []compman.RangeSpec(*r)) }

func (r *rangeFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want lo,hi, got %q", v)
	}
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return err
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return err
	}
	*r = append(*r, compman.RangeSpec{Lo: lo, Hi: hi})
	return nil
}

func main() {
	log.SetPrefix("gupt-cli: ")
	log.SetFlags(0)

	// The audit, tenant, and top subcommands are operator tooling (local
	// files / the admin HTTP plane); they dispatch before flag parsing.
	if len(os.Args) > 1 && os.Args[1] == "audit" {
		if err := runAudit(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "tenant" {
		if err := runTenant(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		if err := runTop(os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	var (
		addr       = flag.String("addr", "127.0.0.1:7113", "guptd address")
		admin      = flag.String("admin", "", "guptd admin endpoint; with -op stats renders the per-dataset budget table, with -op cache the noisy-answer cache counters")
		op         = flag.String("op", "query", "operation: query | budget | list | stats | cache | ping")
		ds         = flag.String("dataset", "", "dataset name")
		program    = flag.String("program", "mean", "program: mean | median | variance | percentile | covariance | histogram | kmeans | logreg | linreg | naivebayes")
		col        = flag.Int("col", 0, "target column")
		colB       = flag.Int("colB", 0, "second column for -program covariance")
		pq         = flag.Float64("p", 0.5, "quantile for -program percentile")
		histLo     = flag.Float64("histLo", 0, "histogram lower bound")
		histHi     = flag.Float64("histHi", 0, "histogram upper bound")
		bins       = flag.Int("bins", 0, "histogram bin count")
		k          = flag.Int("k", 2, "clusters for -program kmeans")
		dims       = flag.Int("dims", 1, "feature dims for kmeans/logreg/linreg/naivebayes")
		labelCol   = flag.Int("label", 0, "label/target column for logreg/linreg/naivebayes")
		iters      = flag.Int("iters", 20, "iterations for kmeans/logreg")
		mode       = flag.String("mode", "tight", "range mode: tight | loose | helper")
		epsilon    = flag.Float64("epsilon", 0, "privacy budget for this query")
		accuracy   = flag.Float64("accuracy", 0, "accuracy goal rho in (0,1); replaces -epsilon")
		confidence = flag.Float64("confidence", 0.9, "confidence for -accuracy")
		blockSize  = flag.Int("blocksize", 0, "block size beta (0 = default n^0.6)")
		gamma      = flag.Int("gamma", 0, "resampling factor (0/1 = off)")
		autoBlock  = flag.Bool("autoblock", false, "tune block size from the aged sample")
		seed       = flag.Int64("seed", 0, "seed for reproducible runs")
		deadline   = flag.Duration("deadline", 0, "answer-by budget for this query; the server refuses (with a retry hint, zero epsilon spent) rather than answer late (0 = none)")
		apiKey     = flag.String("api-key", os.Getenv("GUPT_API_KEY"), "tenant API key for a tenancy-enabled server (default $GUPT_API_KEY)")
		adminToken = flag.String("admin-token", os.Getenv("GUPT_ADMIN_TOKEN"), "admin token for -admin HTTP views (default $GUPT_ADMIN_TOKEN)")
		ranges     rangeFlags
	)
	flag.Var(&ranges, "range", "output range lo,hi (repeat per output dimension)")
	flag.Parse()

	// The admin stats and cache tables talk HTTP to the operator plane; no
	// protocol connection is needed.
	if *op == "stats" && *admin != "" {
		if err := adminStats(*admin, *adminToken); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *op == "cache" {
		if *admin == "" {
			log.Fatal("-op cache needs -admin (the cache is an operator view)")
		}
		if err := adminCache(*admin, *adminToken); err != nil {
			log.Fatal(err)
		}
		return
	}

	client, err := compman.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if *apiKey != "" {
		client.SetAPIKey(*apiKey)
	}

	switch *op {
	case "ping":
		if err := client.Ping(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")
	case "list":
		names, err := client.Datasets()
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "budget":
		requireDataset(*ds)
		rem, err := client.RemainingBudget(*ds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("remaining privacy budget: %g\n", rem)
	case "stats":
		stats, err := client.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("queries ok: %d   failed: %d   budget refusals: %d\n",
			stats.QueriesOK, stats.QueriesFailed, stats.BudgetRefusals)
		fmt.Printf("aborted (budget kept): %d   degraded: %d   blocks substituted: %d   retries: %d\n",
			stats.QueriesAborted, stats.QueriesDegraded, stats.BlocksSubstituted, stats.QueryRetries)
		if stats.QueriesOK > 0 {
			fmt.Printf("mean query latency: %dms\n", stats.TotalQueryMillis/stats.QueriesOK)
		}
	case "query":
		requireDataset(*ds)
		req := &compman.Request{
			Dataset: *ds,
			Program: &compman.ProgramSpec{
				Type: *program, Col: *col, ColB: *colB, P: *pq,
				Lo: *histLo, Hi: *histHi, Bins: *bins,
				K: *k, FeatureDims: *dims, LabelCol: *labelCol, Iters: *iters, Seed: *seed,
			},
			Mode:           *mode,
			OutputRanges:   ranges,
			Epsilon:        *epsilon,
			BlockSize:      *blockSize,
			Gamma:          *gamma,
			AutoBlockSize:  *autoBlock,
			Seed:           *seed,
			DeadlineMillis: deadline.Milliseconds(),
		}
		if *accuracy > 0 {
			req.Epsilon = 0
			req.Accuracy = &compman.AccuracySpec{Rho: *accuracy, Confidence: *confidence}
		}
		resp, err := client.Query(req)
		if err != nil {
			// A post-charge abort still consumed privacy budget (§6.2);
			// the analyst needs to see that, not just the error.
			var qe *compman.QueryError
			if errors.As(err, &qe) && qe.EpsilonCharged > 0 {
				log.Fatalf("%v (epsilon %g was still consumed)", err, qe.EpsilonCharged)
			}
			log.Fatal(err)
		}
		fmt.Printf("output: %v\n", resp.Output)
		fmt.Printf("epsilon spent: %g   blocks: %d (size %d)   failed blocks: %d\n",
			resp.EpsilonSpent, resp.NumBlocks, resp.BlockSize, resp.FailedBlocks)
		if resp.CacheHit {
			fmt.Println("served from cache: this answer was already released; no budget was charged")
		}
		if resp.TraceID != "" {
			fmt.Printf("trace: %s\n", resp.TraceID)
		}
	default:
		log.Fatalf("unknown -op %q", *op)
	}
}

func requireDataset(name string) {
	if name == "" {
		fmt.Fprintln(os.Stderr, "gupt-cli: -dataset is required")
		os.Exit(2)
	}
}
