package main

import "testing"

func TestRangeFlagsParse(t *testing.T) {
	var r rangeFlags
	if err := r.Set("0,150"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("-5,5"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 2 || r[0].Hi != 150 || r[1].Lo != -5 {
		t.Errorf("ranges = %v", r)
	}
	if r.String() == "" {
		t.Error("String() empty")
	}
}

func TestRangeFlagsErrors(t *testing.T) {
	var r rangeFlags
	for _, bad := range []string{"", "1", "1,2,3", "a,b", "1,b"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}
