// Command gupt-worker is the per-node client component of GUPT's
// computation manager: it executes single data blocks inside local
// isolation chambers on behalf of a guptd server. Run one per cluster node
// and list their addresses in guptd's -workers flag.
//
// Usage:
//
//	gupt-worker -listen 127.0.0.1:7201
//	guptd ... -workers 127.0.0.1:7201,127.0.0.1:7202
package main

import (
	"flag"
	"log"
	"net"

	"gupt/internal/compman"
)

func main() {
	log.SetPrefix("gupt-worker: ")
	log.SetFlags(log.LstdFlags)

	var (
		listen  = flag.String("listen", "127.0.0.1:7201", "address to listen on")
		scratch = flag.String("scratch", "", "root for subprocess chamber scratch dirs (default: system temp)")
	)
	flag.Parse()

	w := compman.NewWorker(compman.WorkerConfig{
		ScratchRoot: *scratch,
		Logger:      log.Default(),
	})
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("executing blocks on %s", l.Addr())
	if err := w.Serve(l); err != nil {
		log.Fatal(err)
	}
}
