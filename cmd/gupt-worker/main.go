// Command gupt-worker is the per-node client component of GUPT's
// computation manager: it executes single data blocks inside local
// isolation chambers on behalf of a guptd server. Run one per cluster node
// and list their addresses in guptd's -workers flag.
//
// Usage:
//
//	gupt-worker -listen 127.0.0.1:7201
//	guptd ... -workers 127.0.0.1:7201,127.0.0.1:7202
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"gupt/internal/compman"
	"gupt/internal/telemetry"
)

func main() {
	log.SetPrefix("gupt-worker: ")
	log.SetFlags(log.LstdFlags)

	var (
		listen     = flag.String("listen", "127.0.0.1:7201", "address to listen on")
		scratch    = flag.String("scratch", "", "root for subprocess chamber scratch dirs (default: system temp)")
		adminAddr  = flag.String("admin-addr", "", "operator admin HTTP endpoint (/metrics, /healthz, /debug/pprof); empty disables")
		adminToken = flag.String("admin-token", "", "shared secret gating the admin HTTP endpoint (all routes except /healthz); empty leaves it open")
	)
	flag.Parse()

	tel := telemetry.NewRegistry()
	w := compman.NewWorker(compman.WorkerConfig{
		ScratchRoot: *scratch,
		Logger:      log.Default(),
		Telemetry:   tel,
	})

	// The worker's own admin plane: chamber counters and its per-stage
	// span histograms (bucketed, like every telemetry export). Operator-
	// facing only — bind to loopback or an ops network.
	if *adminAddr != "" {
		al, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		handler := telemetry.AdminHandler(telemetry.AdminConfig{
			Registry: tel,
			Health:   func() error { return nil },
			Token:    *adminToken,
		})
		go func() {
			if err := http.Serve(al, handler); err != nil {
				log.Printf("admin server: %v", err)
			}
		}()
		log.Printf("admin endpoint on http://%s (/metrics /healthz /debug/pprof/)", al.Addr())
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("executing blocks on %s", l.Addr())
	if err := w.Serve(l); err != nil {
		log.Fatal(err)
	}
}
