module gupt

go 1.22
