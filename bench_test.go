package gupt

// bench_test.go regenerates the paper's evaluation as testing.B benchmarks,
// one per table/figure (see DESIGN.md §2 for the experiment index). Each
// benchmark runs the corresponding internal/experiments runner and reports
// the headline quantity of that artifact as a custom metric, so
// `go test -bench=. -benchmem` doubles as a reproduction report. Benchmarks
// default to the Quick configuration; set GUPT_BENCH_FULL=1 for paper-size
// runs (minutes, not seconds).

import (
	"context"
	"os"
	"strconv"
	"testing"

	"gupt/internal/experiments"
	"gupt/internal/mathutil"
	"gupt/internal/sandbox"
)

var benchCtx = context.Background()

// TestMain lets the test binary double as the subprocess-chamber app for
// BenchmarkSandboxOverhead, mirroring the re-exec pattern used by the
// sandbox package's own tests.
func TestMain(m *testing.M) {
	if os.Getenv("GUPT_BENCH_APP") == "kmeans" {
		iters, err := strconv.Atoi(os.Getenv("GUPT_APP_ITERS"))
		if err != nil || iters <= 0 {
			iters = 10
		}
		err = sandbox.ServeApp(os.Stdin, os.Stdout, func(block []mathutil.Vec) (mathutil.Vec, error) {
			return KMeans{K: 4, FeatureDims: 10, Iters: iters, Seed: 42}.Run(block)
		})
		if err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func benchConfig() experiments.Config {
	return experiments.Config{Seed: 42, Quick: os.Getenv("GUPT_BENCH_FULL") == ""}
}

// BenchmarkFig3LogisticRegression regenerates Figure 3: classification
// accuracy vs ε. Metrics: accuracy at the largest ε and the non-private
// baseline.
func BenchmarkFig3LogisticRegression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GUPTTight[len(r.GUPTTight)-1], "acc@maxEps")
		b.ReportMetric(r.NonPrivate, "acc@nonprivate")
	}
}

// BenchmarkFig4KMeansICV regenerates Figure 4: normalized intra-cluster
// variance vs ε for GUPT-tight and GUPT-loose (baseline = 100).
func BenchmarkFig4KMeansICV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Epsilons) - 1
		b.ReportMetric(r.GUPTTight[last], "tightICV@maxEps")
		b.ReportMetric(r.GUPTLoose[last], "looseICV@maxEps")
	}
}

// BenchmarkFig5PINQComparison regenerates Figure 5: GUPT's perturbation is
// independent of the declared iteration count while PINQ's grows with it.
func BenchmarkFig5PINQComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Iterations) - 1
		b.ReportMetric(r.Series["GUPT-tight eps=2"][last], "guptICV@maxIters")
		b.ReportMetric(r.Series["PINQ-tight eps=2"][last], "pinqICV@maxIters")
	}
}

// BenchmarkFig6Scalability regenerates Figure 6: wall-clock time of
// non-private vs GUPT-helper vs GUPT-loose k-means as iterations grow.
func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Iterations) - 1
		b.ReportMetric(float64(r.GUPTLoose[last])/float64(r.NonPrivate[last]), "loose/nonprivate")
	}
}

// BenchmarkFig7AccuracyCDF regenerates Figure 7: the fraction of queries
// meeting the accuracy goal under each budget policy.
func BenchmarkFig7AccuracyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeetsGoal("variable eps"), "metGoal@variable")
		b.ReportMetric(r.MeetsGoal("constant eps=0.3"), "metGoal@eps0.3")
		b.ReportMetric(r.VariableEpsilon, "variableEps")
	}
}

// BenchmarkFig8BudgetLifetime regenerates Figure 8: normalized budget
// lifetime (the paper reports variable ε at ≈2.3× constant ε=1).
func BenchmarkFig8BudgetLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormalizedLifetime["variable eps"], "lifetime@variable")
	}
}

// BenchmarkFig9BlockSize regenerates Figure 9: normalized RMSE vs block
// size for mean and median queries.
func BenchmarkFig9BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		mean := r.Series["mean eps=2"]
		med := r.Series["median eps=2"]
		b.ReportMetric(mean[0], "meanRMSE@beta1")
		b.ReportMetric(med[len(med)-1], "medianRMSE@betaMax")
	}
}

// BenchmarkTable1Capabilities regenerates Table 1 (qualitative; the
// executable checks live in the adversarial tests cited in
// internal/experiments/table1.go).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 6 {
			b.Fatalf("Table 1 has %d rows", len(rows))
		}
	}
}

// BenchmarkSandboxOverhead regenerates the §6.1 measurement: isolation
// overhead of subprocess chambers over in-process execution.
func BenchmarkSandboxOverhead(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.SandboxOverhead(benchConfig(), exe, nil, []string{"GUPT_BENCH_APP=kmeans"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Light.OverheadFrac, "overhead%@light")
		b.ReportMetric(100*r.Heavy.OverheadFrac, "overhead%@heavy")
	}
}

// BenchmarkResamplingVariance is the §4.2/Claim 1 ablation: variance falls
// with γ at constant ε.
func BenchmarkResamplingVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ResamplingVariance(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Variances[0], "var@gamma1")
		b.ReportMetric(r.Variances[len(r.Variances)-1], "var@gammaMax")
	}
}

// BenchmarkBlockSizeOptimizer is the §4.3 validation: the aged-sample
// optimizer's measured error versus the n^0.6 default.
func BenchmarkBlockSizeOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Optimizer(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].ChosenRMSE, "rmse@chosen")
		b.ReportMetric(r.Rows[0].DefaultRMSE, "rmse@default")
	}
}

// BenchmarkTimingAttackDefense is the §6.2 measurement: the runtime gap a
// stalling program leaks, with and without the execution quantum.
func BenchmarkTimingAttackDefense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TimingAttack(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.GapUndefended.Milliseconds()), "gapMs@undefended")
		b.ReportMetric(float64(r.GapDefended.Milliseconds()), "gapMs@defended")
	}
}

// BenchmarkBudgetAttack is the §6.2 budget side-channel measurement: the
// ε gap a conditional budget burn extracts from the PINQ baseline.
func BenchmarkBudgetAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BudgetAttack(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PINQLeak, "pinqLeakEps")
	}
}

// BenchmarkBudgetDistribution is the §5.2/Example 4 ablation: the
// ζ-proportional split equalizes per-query noise.
func BenchmarkBudgetDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BudgetDistribution(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NoiseImbalance("equal split"), "imbalance@equal")
		b.ReportMetric(r.NoiseImbalance("proportional split"), "imbalance@proportional")
	}
}

// BenchmarkEngineThroughput measures the raw engine: one private mean query
// over the census dataset per iteration (not a paper artifact; a
// performance baseline for regressions).
func BenchmarkEngineThroughput(b *testing.B) {
	p := New()
	rows := censusRows(1, 20000)
	if err := p.Register("census", rows, nil, DatasetOptions{TotalBudget: float64(b.N) + 1e9}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := p.Run(benchCtx, Query{
			Dataset:      "census",
			Program:      Mean{Col: 0},
			OutputRanges: []Range{{Lo: 0, Hi: 150}},
			Epsilon:      1,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
