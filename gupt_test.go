package gupt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"gupt/internal/analytics"
	"gupt/internal/mathutil"
)

func censusRows(seed int64, n int) [][]float64 {
	rng := mathutil.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{mathutil.Clamp(40+10*rng.NormFloat64(), 0, 150)}
	}
	return rows
}

func newCensusPlatform(t *testing.T, budget float64, agedFrac float64) *Platform {
	t.Helper()
	p := New()
	err := p.Register("census", censusRows(1, 5000), []string{"age"}, DatasetOptions{
		TotalBudget:  budget,
		Ranges:       []Range{{Lo: 0, Hi: 150}},
		AgedFraction: agedFrac,
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformQuickstart(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Epsilon:      2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40) > 5 {
		t.Errorf("mean = %v, want ~40", res.Output[0])
	}
	rem, err := p.RemainingBudget("census")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rem-8) > 1e-9 {
		t.Errorf("remaining = %v, want 8", rem)
	}
}

func TestPlatformBudgetLifecycle(t *testing.T) {
	p := newCensusPlatform(t, 1, 0)
	q := Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Epsilon:      0.7,
	}
	if _, err := p.Run(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), q); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want ErrBudgetExhausted", err)
	}
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-0.3) > 1e-9 {
		t.Errorf("refused query consumed budget: %v", rem)
	}
}

func TestPlatformAccuracyGoal(t *testing.T) {
	p := newCensusPlatform(t, 100, 0.1)
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Accuracy:     &AccuracyGoal{Rho: 0.9, Confidence: 0.9},
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonSpent <= 0 {
		t.Fatalf("EpsilonSpent = %v", res.EpsilonSpent)
	}
	if math.Abs(res.Output[0]-40)/40 > 0.2 {
		t.Errorf("accuracy query output %v too far from 40", res.Output[0])
	}
}

func TestPlatformEstimateEpsilonMatchesCharge(t *testing.T) {
	p := newCensusPlatform(t, 100, 0.1)
	goal := AccuracyGoal{Rho: 0.9, Confidence: 0.9}
	preview, err := p.EstimateEpsilon("census", Mean{Col: 0}, 0, []Range{{Lo: 0, Hi: 150}}, goal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Accuracy:     &goal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(preview-res.EpsilonSpent) > 1e-9 {
		t.Errorf("preview %v != charged %v", preview, res.EpsilonSpent)
	}
	// Preview itself must not charge.
	rem, _ := p.RemainingBudget("census")
	if math.Abs((100-rem)-res.EpsilonSpent) > 1e-9 {
		t.Errorf("EstimateEpsilon charged the ledger")
	}
}

func TestPlatformLooseAndHelperModes(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		Mode:         Loose,
		OutputRanges: []Range{{Lo: 0, Hi: 300}},
		Epsilon:      4,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40) > 15 {
		t.Errorf("loose mean = %v", res.Output[0])
	}

	res, err = p.Run(context.Background(), Query{
		Dataset: "census",
		Program: Mean{Col: 0},
		Mode:    Helper,
		Translate: func(in []Range) []Range {
			return []Range{{Lo: in[0].Lo - 10, Hi: in[0].Hi + 10}}
		},
		Epsilon: 4,
		Seed:    6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40) > 15 {
		t.Errorf("helper mean = %v (input ranges came from the dataset)", res.Output[0])
	}
}

func TestPlatformAutoBlockSize(t *testing.T) {
	p := newCensusPlatform(t, 100, 0.1)
	res, err := p.Run(context.Background(), Query{
		Dataset:       "census",
		Program:       Mean{Col: 0},
		OutputRanges:  []Range{{Lo: 0, Hi: 150}},
		Epsilon:       2,
		AutoBlockSize: true,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockSize >= 100 {
		t.Errorf("auto block size %d not tuned down for a mean query", res.BlockSize)
	}
}

func TestPlatformCustomProgram(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	// A user-supplied closure program: fraction of people over 60.
	over60 := ProgramFunc{ProgName: "over60", Dims: 1, F: func(block []mathutil.Vec) (mathutil.Vec, error) {
		count := 0
		for _, r := range block {
			if r[0] > 60 {
				count++
			}
		}
		return mathutil.Vec{float64(count) / float64(len(block))}, nil
	}}
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      over60,
		OutputRanges: []Range{{Lo: 0, Hi: 1}},
		Epsilon:      3,
		Seed:         8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// P(N(40,10) > 60) ≈ 0.023.
	if res.Output[0] < 0 || res.Output[0] > 0.15 {
		t.Errorf("over-60 fraction = %v, want small", res.Output[0])
	}
}

func TestPlatformValidationErrors(t *testing.T) {
	p := newCensusPlatform(t, 10, 0)
	ctx := context.Background()
	cases := []struct {
		name string
		q    Query
	}{
		{"unknown dataset", Query{Dataset: "x", Program: Mean{}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"nil program", Query{Dataset: "census", OutputRanges: []Range{{Lo: 0, Hi: 1}}, Epsilon: 1}},
		{"no budget or accuracy", Query{Dataset: "census", Program: Mean{}, OutputRanges: []Range{{Lo: 0, Hi: 1}}}},
		{"both budget and accuracy", Query{Dataset: "census", Program: Mean{}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Epsilon: 1, Accuracy: &AccuracyGoal{Rho: 0.9, Confidence: 0.9}}},
		{"accuracy without ranges", Query{Dataset: "census", Program: Mean{}, Accuracy: &AccuracyGoal{Rho: 0.9, Confidence: 0.9}}},
		{"accuracy without aged data", Query{Dataset: "census", Program: Mean{}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Accuracy: &AccuracyGoal{Rho: 0.9, Confidence: 0.9}}},
		{"auto block size without aged data", Query{Dataset: "census", Program: Mean{}, OutputRanges: []Range{{Lo: 0, Hi: 1}}, Epsilon: 1, AutoBlockSize: true}},
	}
	for _, c := range cases {
		if _, err := p.Run(ctx, c.q); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestPlatformRegisterValidation(t *testing.T) {
	p := New()
	if err := p.Register("d", [][]float64{{1}, {2, 3}}, nil, DatasetOptions{TotalBudget: 1}); err == nil {
		t.Error("ragged rows accepted")
	}
	if err := p.Register("d", [][]float64{{1}}, nil, DatasetOptions{}); err == nil {
		t.Error("zero budget accepted")
	}
	if err := p.Register("d", [][]float64{{1}}, nil, DatasetOptions{TotalBudget: 1, AgedRows: [][]float64{{1, 2}}}); err == nil {
		t.Error("ragged aged rows accepted")
	}
}

func TestPlatformExplicitAgedRows(t *testing.T) {
	p := New()
	err := p.Register("d", censusRows(1, 1000), []string{"age"}, DatasetOptions{
		TotalBudget: 100,
		AgedRows:    censusRows(2, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	eps, err := p.EstimateEpsilon("d", Mean{Col: 0}, 0, []Range{{Lo: 0, Hi: 150}},
		AccuracyGoal{Rho: 0.9, Confidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Errorf("EstimateEpsilon = %v", eps)
	}
}

func TestPlatformUnregisterAndList(t *testing.T) {
	p := newCensusPlatform(t, 1, 0)
	if names := p.Datasets(); len(names) != 1 || names[0] != "census" {
		t.Errorf("Datasets = %v", names)
	}
	if err := p.Unregister("census"); err != nil {
		t.Fatal(err)
	}
	if len(p.Datasets()) != 0 {
		t.Error("dataset still listed after Unregister")
	}
}

func TestPlatformRegisterCSV(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ages.csv"
	if err := writeTestCSV(path); err != nil {
		t.Fatal(err)
	}
	p := New()
	if err := p.RegisterCSV("csvset", path, true, DatasetOptions{TotalBudget: 10}); err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), Query{
		Dataset:      "csvset",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 100}},
		Epsilon:      5,
		BlockSize:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] < 0 || res.Output[0] > 100 {
		t.Errorf("csv mean = %v", res.Output[0])
	}
}

func TestSynthesizeAgedSample(t *testing.T) {
	p := newCensusPlatform(t, 10, 0) // no natural aged data
	// Accuracy goals are unavailable before synthesis.
	_, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Accuracy:     &AccuracyGoal{Rho: 0.9, Confidence: 0.9},
	})
	if err == nil {
		t.Fatal("accuracy goal worked without aged data")
	}

	if err := p.SynthesizeAgedSample("census", 0.5, 0, 0, 3); err != nil {
		t.Fatal(err)
	}
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-9.5) > 1e-9 {
		t.Errorf("synthesis charge wrong: remaining %v", rem)
	}
	// Now accuracy goals work, driven by the synthetic sample.
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      Mean{Col: 0},
		OutputRanges: []Range{{Lo: 0, Hi: 150}},
		Accuracy:     &AccuracyGoal{Rho: 0.9, Confidence: 0.9},
		BlockSize:    16,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Output[0]-40)/40 > 0.2 {
		t.Errorf("accuracy query after synthesis = %v", res.Output[0])
	}
}

func TestSynthesizeAgedSampleValidation(t *testing.T) {
	p := New()
	if err := p.Register("noranges", censusRows(1, 100), nil, DatasetOptions{TotalBudget: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.SynthesizeAgedSample("noranges", 0.5, 0, 0, 1); err == nil {
		t.Error("synthesis without registered ranges accepted")
	}
	if err := p.SynthesizeAgedSample("ghost", 0.5, 0, 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Charge is atomic: over-budget synthesis consumes nothing.
	p2 := newCensusPlatform(t, 0.1, 0)
	if err := p2.SynthesizeAgedSample("census", 5, 0, 0, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v", err)
	}
	rem, _ := p2.RemainingBudget("census")
	if rem != 0.1 {
		t.Errorf("failed synthesis consumed budget: %v", rem)
	}
}

// A DP histogram via the black-box route: every bucket fraction is an
// output dimension bounded in [0,1].
func TestPlatformHistogramQuery(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	h := Histogram{Col: 0, Lo: 0, Hi: 150, Bins: 5}
	ranges := make([]Range, h.Bins)
	for i := range ranges {
		ranges[i] = Range{Lo: 0, Hi: 1}
	}
	res, err := p.Run(context.Background(), Query{
		Dataset:      "census",
		Program:      h,
		OutputRanges: ranges,
		Epsilon:      20,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Output {
		sum += v
	}
	// The noisy fractions should still roughly sum to 1.
	if math.Abs(sum-1) > 0.3 {
		t.Errorf("histogram mass = %v", sum)
	}
	// Ages are N(40,10): bucket 1 ([30,60)) dominates.
	if res.Output[1] < res.Output[0] || res.Output[1] < res.Output[3] {
		t.Errorf("histogram shape wrong: %v", res.Output)
	}
}

// Naive Bayes through the platform: the averaged noisy model still
// classifies clearly separated classes.
func TestPlatformNaiveBayesQuery(t *testing.T) {
	rng := mathutil.NewRNG(8)
	rows := make([][]float64, 4000)
	for i := range rows {
		y := float64(i % 2)
		center := -2.0
		if y == 1 {
			center = 2
		}
		rows[i] = []float64{center + rng.NormFloat64(), y}
	}
	p := New()
	if err := p.Register("classes", rows, nil, DatasetOptions{TotalBudget: 100}); err != nil {
		t.Fatal(err)
	}
	nb := NaiveBayes{FeatureDims: 1, LabelCol: 1}
	ranges := []Range{
		{Lo: 0, Hi: 1},  // prior
		{Lo: -5, Hi: 5}, // class-1 mean
		{Lo: 0, Hi: 5},  // class-1 variance
		{Lo: -5, Hi: 5}, // class-0 mean
		{Lo: 0, Hi: 5},  // class-0 variance
	}
	res, err := p.Run(context.Background(), Query{
		Dataset:      "classes",
		Program:      nb,
		OutputRanges: ranges,
		Epsilon:      20,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	vecRows := make([]mathutil.Vec, len(rows))
	for i, r := range rows {
		vecRows[i] = mathutil.Vec(r)
	}
	if acc := analytics.NaiveBayesAccuracy(res.Output, vecRows, 1, 1); acc < 0.9 {
		t.Errorf("private naive bayes accuracy = %v", acc)
	}
}

// The platform is safe under concurrent analysts: parallel queries all
// succeed or are refused cleanly, and the ledger stays exact.
func TestPlatformConcurrentQueries(t *testing.T) {
	p := newCensusPlatform(t, 100, 0)
	const workers = 16
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			_, err := p.Run(context.Background(), Query{
				Dataset:      "census",
				Program:      Mean{Col: 0},
				OutputRanges: []Range{{Lo: 0, Hi: 150}},
				Epsilon:      0.5,
				Seed:         int64(i),
			})
			errs <- err
		}(i)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	rem, _ := p.RemainingBudget("census")
	if math.Abs(rem-92) > 1e-9 {
		t.Errorf("remaining = %v, want 92", rem)
	}
}

func TestDistributeBudgetReExport(t *testing.T) {
	out, err := DistributeBudget(1, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.25) > 1e-12 || math.Abs(out[1]-0.75) > 1e-12 {
		t.Errorf("DistributeBudget = %v", out)
	}
}

func writeTestCSV(path string) error {
	var sb strings.Builder
	sb.WriteString("age\n")
	for _, r := range censusRows(9, 40) {
		fmt.Fprintf(&sb, "%g\n", r[0])
	}
	return os.WriteFile(path, []byte(sb.String()), 0o600)
}
