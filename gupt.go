// Package gupt is the public, embeddable API of the GUPT platform: privacy
// preserving data analysis for programs that were not written with privacy
// in mind (Mohan, Thakurta, Shi, Song, Culler — SIGMOD 2012).
//
// A data owner registers datasets with a lifetime privacy budget; analysts
// submit black-box analysis programs plus either an explicit ε or an
// accuracy goal. GUPT runs each program under the sample-and-aggregate
// framework inside isolated execution chambers and releases only
// ε-differentially private outputs, charging every query against the
// platform-owned budget ledger.
//
// Quickstart:
//
//	p := gupt.New()
//	err := p.Register("census", rows, []string{"age"}, gupt.DatasetOptions{
//		TotalBudget: 10,
//		Ranges:      []gupt.Range{{Lo: 0, Hi: 150}},
//	})
//	res, err := p.Run(ctx, gupt.Query{
//		Dataset:      "census",
//		Program:      gupt.Mean{Col: 0},
//		OutputRanges: []gupt.Range{{Lo: 0, Hi: 150}},
//		Epsilon:      1,
//	})
//	fmt.Println(res.Output[0]) // differentially private average age
//
// For hosted, multi-tenant deployments, see cmd/guptd (the network server)
// and cmd/gupt-cli; this package is the same engine embedded in-process.
package gupt

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gupt/internal/aging"
	"gupt/internal/analytics"
	"gupt/internal/budget"
	"gupt/internal/core"
	"gupt/internal/dataset"
	"gupt/internal/dp"
	"gupt/internal/mathutil"
	"gupt/internal/qcache"
	"gupt/internal/sandbox"
)

// Re-exported building blocks. These are aliases, so values returned by the
// platform interoperate directly with the exported names.
type (
	// Range is a closed interval bounding an attribute or an output
	// dimension.
	Range = dp.Range
	// Program is the black-box analysis program contract: any computation
	// that maps a subset of the dataset's records to a fixed-width vector.
	Program = analytics.Program
	// AccuracyGoal expresses utility in the analyst's terms: "within a
	// factor Rho of the true value with probability Confidence" (§5.1).
	AccuracyGoal = aging.AccuracyGoal
	// Result is a differentially private query result with
	// data-independent diagnostics.
	Result = core.Result
	// RangeMode selects how output ranges are obtained (§4.1).
	RangeMode = core.RangeMode

	// Mean, Median, Variance, Percentile, Covariance, Histogram, KMeans,
	// LogisticRegression, LinearRegression and NaiveBayes are the
	// platform's built-in analysis programs; analysts can equally supply
	// their own Program implementations.
	Mean               = analytics.Mean
	Median             = analytics.Median
	Variance           = analytics.Variance
	Percentile         = analytics.Percentile
	Covariance         = analytics.Covariance
	Histogram          = analytics.Histogram
	KMeans             = analytics.KMeans
	LogisticRegression = analytics.LogisticRegression
	LinearRegression   = analytics.LinearRegression
	NaiveBayes         = analytics.NaiveBayes
	// ProgramFunc adapts a plain function to the Program interface; Pad
	// fixes the output arity of programs whose raw output width varies
	// (§8.1).
	ProgramFunc = analytics.Func
	Pad         = analytics.Pad
)

// Output-range estimation modes (§4.1).
const (
	// Tight: the analyst supplies exact output ranges.
	Tight = core.ModeTight
	// Loose: the analyst supplies loose output ranges; GUPT privately
	// tightens them from the block outputs.
	Loose = core.ModeLoose
	// Helper: the analyst supplies a range-translation function over
	// privately estimated input ranges.
	Helper = core.ModeHelper
)

// ErrBudgetExhausted reports that a dataset's lifetime privacy budget
// cannot cover a query. Budget refusals are atomic: the failed query
// consumes nothing.
var ErrBudgetExhausted = dp.ErrBudgetExhausted

// Platform is an embedded GUPT instance: dataset manager, budget manager,
// and the sample-and-aggregate engine behind one façade. It is safe for
// concurrent use.
type Platform struct {
	reg   *dataset.Registry
	mgr   *budget.Manager
	cache *qcache.Cache // noisy-answer cache; nil until EnableCache
}

// New creates an empty platform.
func New() *Platform {
	reg := dataset.NewRegistry()
	return &Platform{reg: reg, mgr: budget.NewManager(reg)}
}

// DatasetOptions configures dataset registration (the data-owner
// interface, §3.1).
type DatasetOptions struct {
	// TotalBudget is the dataset's lifetime ε budget (required, > 0). All
	// queries ever run against the dataset draw from it.
	TotalBudget float64
	// Ranges optionally declares public per-attribute bounds; these must
	// not be data-derived secrets (use public knowledge such as "household
	// income lies in [0, national GDP]").
	Ranges []Range
	// AgedFraction carves the given fraction of records into the aged,
	// no-longer-private sample that powers block-size optimization and
	// accuracy-goal translation (§3.3). Mutually exclusive with AgedRows.
	AgedFraction float64
	// AgedRows supplies an explicit aged sample from the same distribution.
	AgedRows [][]float64
	// Seed drives the aged split deterministically.
	Seed int64
}

// Register adds a dataset of rows (each a vector of float64 attributes)
// under the given name. cols optionally names the columns.
func (p *Platform) Register(name string, rows [][]float64, cols []string, opts DatasetOptions) error {
	tbl := dataset.New(cols)
	for i, r := range rows {
		if err := tbl.Append(mathutil.Vec(r)); err != nil {
			return fmt.Errorf("gupt: row %d: %w", i, err)
		}
	}
	regOpts := dataset.RegisterOptions{
		TotalBudget:  opts.TotalBudget,
		Ranges:       opts.Ranges,
		AgedFraction: opts.AgedFraction,
		Seed:         opts.Seed,
	}
	if opts.AgedRows != nil {
		aged := dataset.New(cols)
		for i, r := range opts.AgedRows {
			if err := aged.Append(mathutil.Vec(r)); err != nil {
				return fmt.Errorf("gupt: aged row %d: %w", i, err)
			}
		}
		regOpts.Aged = aged
	}
	_, err := p.reg.Register(name, tbl, regOpts)
	return err
}

// RegisterCSV loads a dataset from a CSV file and registers it.
func (p *Platform) RegisterCSV(name, path string, header bool, opts DatasetOptions) error {
	tbl, err := dataset.LoadCSVFile(path, header)
	if err != nil {
		return err
	}
	_, err = p.reg.Register(name, tbl, dataset.RegisterOptions{
		TotalBudget:  opts.TotalBudget,
		Ranges:       opts.Ranges,
		AgedFraction: opts.AgedFraction,
		Seed:         opts.Seed,
	})
	return err
}

// Unregister removes a dataset and drops its cached answers.
func (p *Platform) Unregister(name string) error {
	p.cache.Invalidate(name)
	return p.reg.Unregister(name)
}

// Datasets lists registered dataset names.
func (p *Platform) Datasets() []string { return p.reg.Names() }

// RemainingBudget reports the unspent lifetime budget of a dataset.
func (p *Platform) RemainingBudget(name string) (float64, error) {
	return p.mgr.Remaining(name)
}

// Query describes one differentially private computation (the analyst
// interface, §3.1).
type Query struct {
	// Dataset names a registered dataset.
	Dataset string
	// Program is the black-box analysis program.
	Program Program

	// Mode selects output-range estimation; the zero value is Tight.
	Mode RangeMode
	// OutputRanges holds per-output-dimension ranges: exact for Tight,
	// loose for Loose. Unused by Helper.
	OutputRanges []Range
	// InputRanges optionally overrides the dataset's registered attribute
	// bounds for Helper mode.
	InputRanges []Range
	// Translate converts privately tightened input ranges to output ranges
	// for Helper mode.
	Translate func([]Range) []Range
	// PercentileLow and PercentileHigh select the inter-percentile pair the
	// Loose/Helper range estimation targets; zero values select the paper's
	// default (0.25, 0.75).
	PercentileLow, PercentileHigh float64

	// Epsilon is the query's explicit privacy budget. Exactly one of
	// Epsilon and Accuracy must be set.
	Epsilon float64
	// Accuracy lets the analyst state the goal in utility terms instead;
	// GUPT computes and charges the minimal ε that meets it (§5.1).
	// Requires the dataset to have an aged sample.
	Accuracy *AccuracyGoal

	// BlockSize overrides the default n^0.6 block size; AutoBlockSize asks
	// GUPT to tune it from the aged sample instead (§4.3).
	BlockSize     int
	AutoBlockSize bool
	// Gamma is the resampling factor (§4.2); 0 or 1 disables resampling.
	Gamma int
	// Seed makes the query reproducible.
	Seed int64
	// Quantum arms the timing-attack defense: each block execution consumes
	// exactly this wall-clock time (§6.2).
	Quantum time.Duration
	// BlockTimeout bounds each block execution from outside the chamber: a
	// block whose chamber has not returned by the deadline contributes the
	// data-independent substitute value instead of stalling the query. Use
	// it whenever Chambers may wedge (remote workers, subprocesses).
	BlockTimeout time.Duration
	// MaxFailFrac aborts the query with core.ErrTooManyFailures when more
	// than this fraction of blocks was substituted — a quality guard for
	// operational failures. The privacy charge stands on abort. Zero
	// disables the guard.
	MaxFailFrac float64
	// Chambers optionally overrides the isolation chamber used for block
	// executions (e.g. subprocess isolation for untrusted binaries); nil
	// selects in-process chambers.
	Chambers func(Program, sandbox.Policy) sandbox.Chamber
	// UserLevel switches the privacy unit from records to users: all rows
	// sharing the value of UserColumn stay together in blocks, so ε covers
	// a user's entire record set (paper §8.1, extension).
	UserLevel  bool
	UserColumn int
}

// Run executes the query and returns its differentially private result.
// The privacy charge is settled against the dataset's ledger before the
// computation runs; refused charges consume nothing.
func (p *Platform) Run(ctx context.Context, q Query) (*Result, error) {
	reg, err := p.reg.Lookup(q.Dataset)
	if err != nil {
		return nil, err
	}
	if q.Program == nil {
		return nil, errors.New("gupt: query needs a program")
	}
	label := fmt.Sprintf("%s:%s", q.Dataset, q.Program.Name())

	// Noisy-answer cache (EnableCache): an exact repeat of a previously
	// released query — same distribution-relevant fields, same dataset
	// content version — is re-served the same published answer at zero
	// additional ε. The re-release is journaled as a cache_hit ledger
	// record; the accountant is never touched.
	fp, cachable := p.queryFingerprint(&q, reg.ContentVersion())
	if cachable {
		if v, ok := p.cache.Get(fp); ok {
			return p.cacheHitResult(q.Dataset, label, v.(Result))
		}
	}

	spec := core.RangeSpec{
		Mode: q.Mode, Output: q.OutputRanges, Translate: q.Translate,
		PercentileLow: q.PercentileLow, PercentileHigh: q.PercentileHigh,
	}
	if q.Mode == Helper {
		spec.Input = q.InputRanges
		if spec.Input == nil {
			spec.Input = reg.Private.Ranges()
		}
	}

	rows := reg.Private.Rows()
	opts := core.Options{
		BlockSize:    q.BlockSize,
		Gamma:        q.Gamma,
		Seed:         q.Seed,
		Quantum:      q.Quantum,
		BlockTimeout: q.BlockTimeout,
		MaxFailFrac:  q.MaxFailFrac,
		NewChamber:   q.Chambers,
		UserLevel:    q.UserLevel,
		UserColumn:   q.UserColumn,
	}

	if q.AutoBlockSize && q.BlockSize == 0 {
		if !reg.HasAged() {
			return nil, aging.ErrNoAgedData
		}
		if q.OutputRanges == nil {
			return nil, errors.New("gupt: AutoBlockSize requires output ranges")
		}
		planEps := q.Epsilon
		if planEps <= 0 {
			planEps = 1
		}
		choice, err := aging.OptimizeBlockSize(q.Program, reg.Aged.Rows(), len(rows), planEps, q.OutputRanges)
		if err != nil {
			return nil, err
		}
		opts.BlockSize = choice.BlockSize
	}

	switch {
	case q.Epsilon > 0 && q.Accuracy != nil:
		return nil, errors.New("gupt: set either Epsilon or Accuracy, not both")
	case q.Epsilon > 0:
		if err := p.mgr.Charge(q.Dataset, label, q.Epsilon); err != nil {
			return nil, err
		}
		opts.Epsilon = q.Epsilon
	case q.Accuracy != nil:
		if q.OutputRanges == nil {
			return nil, errors.New("gupt: accuracy goals need output ranges")
		}
		bs := opts.BlockSize
		if bs == 0 {
			bs = core.DefaultBlockSize(len(rows))
		}
		est, err := p.mgr.ChargeForAccuracy(q.Dataset, label, q.Program, bs, q.OutputRanges, *q.Accuracy)
		if err != nil {
			return nil, err
		}
		opts.Epsilon = est.Epsilon
		opts.BlockSize = est.BlockSize
	default:
		return nil, errors.New("gupt: query needs a positive Epsilon or an Accuracy goal")
	}

	res, err := core.Run(ctx, q.Program, rows, spec, opts)
	// Fill with clean releases only: a degraded answer is safe to re-serve
	// but would pin the degradation past the fault that caused it.
	if err == nil && cachable && res.FailedBlocks == 0 {
		p.cache.Put(fp, q.Dataset, *res, resultCacheSize(res))
	}
	return res, err
}

// EstimateEpsilon previews the ε an accuracy goal would cost on a dataset
// without charging anything — useful for analysts budgeting a session. It
// requires the dataset to have an aged sample.
func (p *Platform) EstimateEpsilon(name string, program Program, blockSize int, ranges []Range, goal AccuracyGoal) (float64, error) {
	reg, err := p.reg.Lookup(name)
	if err != nil {
		return 0, err
	}
	if !reg.HasAged() {
		return 0, aging.ErrNoAgedData
	}
	if blockSize == 0 {
		blockSize = core.DefaultBlockSize(reg.Private.NumRows())
	}
	est, err := aging.EstimateEpsilon(program, reg.Aged.Rows(), reg.Private.NumRows(), blockSize, ranges, goal)
	if err != nil {
		return 0, err
	}
	return est.Epsilon, nil
}

// DefaultBlockSize returns the paper's default block size n^0.6 for a
// dataset of n records, for callers sizing their own queries.
func DefaultBlockSize(n int) int { return core.DefaultBlockSize(n) }

// DistributeBudget splits a total ε across queries proportionally to their
// noise scales (§5.2), equalizing the noise each query suffers. zetas are
// the queries' noise-scale weights (see budget.Zeta: outputWidth·β/n).
func DistributeBudget(total float64, zetas []float64) ([]float64, error) {
	return budget.Distribute(total, zetas)
}

// SynthesizeAgedSample implements the §3.3 suggestion for datasets with no
// naturally aged data: spend eps of the dataset's budget once on a
// differentially private sketch of the distribution, sample count synthetic
// rows from it, and install them as the dataset's aged sample so accuracy
// goals and block-size tuning become available. The charge is atomic; the
// synthetic rows are a post-processing of the DP release and are safe to
// treat as non-private. Requires the dataset to have registered attribute
// ranges. bins controls the sketch resolution (0 selects 32).
func (p *Platform) SynthesizeAgedSample(name string, eps float64, bins, count int, seed int64) error {
	reg, err := p.reg.Lookup(name)
	if err != nil {
		return err
	}
	ranges := reg.Private.Ranges()
	if ranges == nil {
		return errors.New("gupt: SynthesizeAgedSample needs registered attribute ranges")
	}
	if bins == 0 {
		bins = 32
	}
	if count == 0 {
		count = reg.Private.NumRows() / 10
		if count < 100 {
			count = 100
		}
	}
	if err := reg.Spend("synthesize-aged", eps); err != nil {
		return err
	}
	rows, err := aging.SynthesizeAged(mathutil.NewRNG(seed), reg.Private.Rows(), ranges, bins, count, eps)
	if err != nil {
		return err
	}
	aged := dataset.New(reg.Private.Columns())
	for i, r := range rows {
		if err := aged.Append(r); err != nil {
			return fmt.Errorf("gupt: synthetic row %d: %w", i, err)
		}
	}
	reg.Aged = aged
	// The aged sample feeds block-size planning and accuracy translation,
	// so installing it mutates the dataset's queryable content: bump the
	// content version (making every existing fingerprint unreachable) and
	// eagerly drop the now-dead cache entries.
	reg.BumpContentVersion()
	p.cache.Invalidate(name)
	return nil
}
